package sim

import (
	"testing"
)

func TestDecideMatchesClosedFormBoundaries(t *testing.T) {
	// The whole-queue decision must flip exactly where the closed-form
	// crossover says: Gaussian flips between n=3 and n=4, SUM never.
	cases := []struct {
		op   string
		n    int
		want string
	}{
		{"gaussian2d", 1, "Active"},
		{"gaussian2d", 2, "Active"},
		{"gaussian2d", 3, "Active"},
		{"gaussian2d", 4, "Normal"},
		{"gaussian2d", 64, "Normal"},
		{"sum8", 1, "Active"},
		{"sum8", 64, "Active"},
	}
	for _, tc := range cases {
		got, err := decide(tc.op, tc.n, 128*MB)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("decide(%s, n=%d) = %s, want %s", tc.op, tc.n, got, tc.want)
		}
	}
}

func TestDecideUnknownOpFails(t *testing.T) {
	if _, err := decide("bogus", 1, MB); err == nil {
		t.Fatal("unknown op decided")
	}
}

func TestAccuracyRateEdges(t *testing.T) {
	if AccuracyRate(nil) != 0 {
		t.Error("empty situations should rate 0")
	}
	sits := []Situation{{Correct: true}, {Correct: false}, {Correct: true}, {Correct: true}}
	if got := AccuracyRate(sits); got != 0.75 {
		t.Errorf("rate = %v", got)
	}
}

func TestSeriesRejectsBadOp(t *testing.T) {
	if _, err := Series("bogus", MB, PaperSchemes, Noise{}, 0); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestScheduleAccuracyDeterministicPerSeed(t *testing.T) {
	a, err := ScheduleAccuracy(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScheduleAccuracy(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("situation %d differs across identical seeds", i)
		}
	}
}
