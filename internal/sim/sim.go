// Package sim is the discrete-event cluster simulator that stands in for
// the paper's 16-node Discfarm testbed. It models one storage node and its
// client population with the resource structure the paper's experiments
// expose:
//
//   - the storage node's NIC is a serial resource (transfers to different
//     compute nodes share the 1 GbE link — 118 MB/s measured);
//   - the storage node's kernel capacity is a small pool of cores
//     (2 per simulated storage node, one reserved for I/O service);
//   - each request comes from its own compute-node process, so bounced
//     requests compute in parallel on the client side.
//
// Calibrated with the paper's Table III rates, the simulator reproduces
// every figure of the evaluation at full paper scale (up to 64 concurrent
// requests × 1 GB each), which no single host could materialise with real
// bytes. The same core scheduling code (core.Solver, core.Env) drives the
// simulated DOSAS scheme, so the simulation exercises the production
// decision logic, not a reimplementation.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"dosas/internal/core"
	"dosas/internal/kernels"
)

// Noise models the run-to-run variation the paper reports (network
// bandwidth ranged 111–120 MB/s; OS scheduling adds per-request latency).
// A zero Noise simulates the idealised model.
type Noise struct {
	// BWLow/BWHigh bound the uniformly drawn per-run bandwidth in
	// bytes/second. Zero values disable bandwidth jitter.
	BWLow, BWHigh float64
	// RateJitter is the relative half-width of per-run kernel-rate
	// jitter (0.05 = ±5 %).
	RateJitter float64
	// OverheadLow/High bound the uniformly drawn per-request fixed
	// overhead in seconds (task scheduling, connection setup).
	OverheadLow, OverheadHigh float64
}

// DiscfarmNoise is the variation observed on the paper's testbed.
func DiscfarmNoise() Noise {
	return Noise{
		BWLow: 111e6, BWHigh: 120e6,
		RateJitter:  0.08,
		OverheadLow: 0.01, OverheadHigh: 0.08,
	}
}

// Config describes one simulated experiment point: n concurrent requests
// of one operation against a single storage node, as in the paper's
// Section IV workloads.
type Config struct {
	// Scheme selects TS, AS, or DOSAS behaviour.
	Scheme core.Scheme
	// Requests is the number of concurrent I/O requests (the paper's
	// "I/Os per storage node", 1–64, when StorageNodes is 1; the total
	// across nodes otherwise).
	Requests int
	// StorageNodes simulates a multi-node deployment: requests are
	// spread over this many independent storage nodes (each with its own
	// cores and NIC) and the makespan is the slowest node's. Default 1 —
	// the paper's per-storage-node methodology.
	StorageNodes int
	// Skew biases request placement toward node 0: 0 = balanced
	// round-robin, 1 = everything on node 0. Models the hot-spot
	// contention of the paper's Figure 1 multi-application scenario.
	Skew float64
	// BytesPerRequest is d_i (the paper sweeps 128 MB–1 GB).
	BytesPerRequest uint64
	// Op names the kernel; its calibrated rate and result size are taken
	// from the kernels registry unless overridden below.
	Op string
	// StorageRatePerCore overrides the kernel's per-core rate on storage
	// nodes (bytes/s). Zero uses kernels.RateFor(Op).
	StorageRatePerCore float64
	// ComputeRatePerCore overrides the compute-node per-core rate.
	// Zero uses kernels.RateFor(Op).
	ComputeRatePerCore float64
	// ResultBytes overrides h(d). Zero asks the kernel.
	ResultBytes uint64
	// BW is the nominal network bandwidth (default 118 MB/s).
	BW float64
	// StorageCores is the storage node's core count (default 2).
	StorageCores int
	// IOReservedCores are cores excluded from kernel work (default 1).
	IOReservedCores int
	// ArrivalStagger separates request arrivals (default 1 ms), matching
	// near-simultaneous benchmark launch.
	ArrivalStagger float64
	// Solver drives DOSAS admission (default core.MaxGain).
	Solver core.Solver
	// Migration enables DOSAS's interrupt-and-migrate: on each arrival
	// the whole active set is re-solved and requests flagged "bounce"
	// move to the normal path (default true — the paper's behaviour).
	// Only meaningful for SchemeDOSAS.
	Migration *bool
	// Noise adds run-to-run variation; Seed makes it reproducible.
	Noise Noise
	Seed  int64
}

func (c *Config) applyDefaults() error {
	if c.Requests <= 0 {
		return fmt.Errorf("sim: Requests must be positive")
	}
	if c.StorageNodes <= 0 {
		c.StorageNodes = 1
	}
	if c.Skew < 0 || c.Skew > 1 {
		return fmt.Errorf("sim: Skew must be in [0, 1]")
	}
	if c.BytesPerRequest == 0 {
		return fmt.Errorf("sim: BytesPerRequest must be positive")
	}
	if c.Op == "" {
		c.Op = "sum8"
	}
	if c.StorageRatePerCore == 0 {
		c.StorageRatePerCore = kernels.RateFor(c.Op)
	}
	if c.ComputeRatePerCore == 0 {
		c.ComputeRatePerCore = kernels.RateFor(c.Op)
	}
	if c.StorageRatePerCore <= 0 || c.ComputeRatePerCore <= 0 {
		return fmt.Errorf("sim: no calibrated rate for op %q", c.Op)
	}
	if c.ResultBytes == 0 {
		if k, err := kernels.New(c.Op); err == nil {
			if err := k.Configure(defaultSimParams(c.Op)); err == nil {
				c.ResultBytes = k.ResultSize(c.BytesPerRequest)
			}
		}
		if c.ResultBytes == 0 {
			c.ResultBytes = 8
		}
	}
	if c.BW == 0 {
		c.BW = 118e6
	}
	if c.StorageCores <= 0 {
		c.StorageCores = 2
	}
	if c.IOReservedCores <= 0 {
		c.IOReservedCores = 1
	}
	if c.IOReservedCores >= c.StorageCores {
		c.IOReservedCores = c.StorageCores - 1
	}
	if c.ArrivalStagger == 0 {
		c.ArrivalStagger = 1e-3
	}
	if c.Solver == nil {
		c.Solver = core.MaxGain{}
	}
	if c.Migration == nil {
		on := true
		c.Migration = &on
	}
	return nil
}

// defaultSimParams supplies kernel parameters good enough for result-size
// estimation.
func defaultSimParams(op string) []byte {
	switch op {
	case "gaussian2d":
		return kernels.GaussianParams(4096, false)
	case "count":
		return []byte("needle")
	case "downsample":
		return kernels.DownsampleParams(16)
	case "kmeans1d":
		return kernels.KMeansParams(4, 0, 256)
	default:
		return nil
	}
}

// Metrics is the outcome of one simulated run.
type Metrics struct {
	// Makespan is the total execution time of all requests in seconds —
	// the quantity the paper's execution-time figures plot.
	Makespan float64
	// PerRequest holds each request's completion time.
	PerRequest []float64
	// Bandwidth is the achieved aggregate rate: total requested bytes
	// divided by makespan (the paper's Figures 11–12 metric).
	Bandwidth float64
	// RawBytesMoved counts bytes shipped over the storage node's NIC
	// (request data for bounced work, results for active work).
	RawBytesMoved uint64
	// Accepted, Bounced, Migrated count request dispositions.
	Accepted, Bounced, Migrated int
}

// request is the simulator's view of one I/O.
type request struct {
	id      int
	arrival float64
	bytes   uint64
	result  uint64
	// disposition
	active   bool
	migrated bool
	// completion
	done float64
}

// Run simulates one experiment point.
func Run(cfg Config) (Metrics, error) {
	if err := cfg.applyDefaults(); err != nil {
		return Metrics{}, err
	}
	if cfg.Scheme != core.SchemeAS && cfg.Scheme != core.SchemeTS && cfg.Scheme != core.SchemeDOSAS {
		return Metrics{}, fmt.Errorf("sim: unknown scheme %v", cfg.Scheme)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Build the request population and place each request on a storage
	// node: balanced round-robin, biased toward node 0 by Skew.
	reqs := make([]*request, cfg.Requests)
	perNode := make([][]*request, cfg.StorageNodes)
	for i := range reqs {
		reqs[i] = &request{
			id:      i,
			arrival: float64(i) * cfg.ArrivalStagger,
			bytes:   cfg.BytesPerRequest,
			result:  cfg.ResultBytes,
		}
		node := i % cfg.StorageNodes
		if cfg.StorageNodes > 1 && cfg.Skew > 0 && rng.Float64() < cfg.Skew {
			node = 0
		}
		perNode[node] = append(perNode[node], reqs[i])
	}

	// Each storage node (its cores and its NIC) runs independently; the
	// experiment finishes when the slowest node does.
	m := Metrics{PerRequest: make([]float64, len(reqs))}
	for _, nodeReqs := range perNode {
		if len(nodeReqs) == 0 {
			continue
		}
		nm, err := runNode(cfg, nodeReqs, rng)
		if err != nil {
			return Metrics{}, err
		}
		m.RawBytesMoved += nm.RawBytesMoved
		m.Migrated += nm.Migrated
		m.Accepted += nm.Accepted
		m.Bounced += nm.Bounced
		if nm.Makespan > m.Makespan {
			m.Makespan = nm.Makespan
		}
	}
	for i, r := range reqs {
		m.PerRequest[i] = r.done
	}
	if m.Makespan > 0 {
		m.Bandwidth = float64(uint64(cfg.Requests)*cfg.BytesPerRequest) / m.Makespan
	}
	return m, nil
}

// runNode simulates one storage node serving its share of the requests.
func runNode(cfg Config, reqs []*request, rng *rand.Rand) (Metrics, error) {
	// Per-node environmental draws.
	bw := cfg.BW
	if cfg.Noise.BWHigh > cfg.Noise.BWLow && cfg.Noise.BWLow > 0 {
		bw = cfg.Noise.BWLow + rng.Float64()*(cfg.Noise.BWHigh-cfg.Noise.BWLow)
	}
	jitter := func(rate float64) float64 {
		if cfg.Noise.RateJitter <= 0 {
			return rate
		}
		return rate * (1 + (rng.Float64()*2-1)*cfg.Noise.RateJitter)
	}
	storageRate := jitter(cfg.StorageRatePerCore)
	computeRate := jitter(cfg.ComputeRatePerCore)
	overhead := func() float64 {
		if cfg.Noise.OverheadHigh <= cfg.Noise.OverheadLow {
			return 0
		}
		return cfg.Noise.OverheadLow + rng.Float64()*(cfg.Noise.OverheadHigh-cfg.Noise.OverheadLow)
	}

	activeCores := cfg.StorageCores - cfg.IOReservedCores

	// Phase 1: dispositions.
	var migrated int
	switch cfg.Scheme {
	case core.SchemeAS:
		for _, r := range reqs {
			r.active = true
		}
	case core.SchemeTS:
		for _, r := range reqs {
			r.active = false
		}
	case core.SchemeDOSAS:
		// The scheduler decides from its *calibrated* rates and nominal
		// bandwidth — it cannot observe this run's jitter. The mismatch
		// between estimate and reality is what produces the paper's
		// Table IV misjudgments at the break-even boundary.
		migrated = decideDOSAS(cfg, reqs, cfg.StorageRatePerCore*float64(activeCores), cfg.ComputeRatePerCore)
	}

	// Phase 2: timing against the resource model.
	cores := newPool(activeCores)
	nic := newPool(1)

	// Active requests occupy storage cores FCFS in arrival order, then
	// ship their (small) results over the NIC.
	type nicJob struct {
		ready float64
		dur   float64
		r     *request
		final bool // completion occurs at NIC end (active result)
	}
	var nicJobs []nicJob
	var rawMoved uint64
	for _, r := range reqs {
		if !r.active {
			continue
		}
		_, end := cores.schedule(r.arrival, float64(r.bytes)/storageRate+overhead())
		nicJobs = append(nicJobs, nicJob{ready: end, dur: float64(r.result) / bw, r: r, final: true})
		rawMoved += r.result
	}
	// Normal (bounced) requests ship raw data over the NIC, then compute
	// in parallel on their own compute nodes.
	for _, r := range reqs {
		if r.active {
			continue
		}
		nicJobs = append(nicJobs, nicJob{ready: r.arrival, dur: float64(r.bytes)/bw + overhead(), r: r})
		rawMoved += r.bytes
	}
	// The NIC serves transfers FCFS by readiness.
	sort.SliceStable(nicJobs, func(i, j int) bool { return nicJobs[i].ready < nicJobs[j].ready })
	for _, j := range nicJobs {
		_, end := nic.schedule(j.ready, j.dur)
		if j.final {
			j.r.done = end
		} else {
			j.r.done = end + float64(j.r.bytes)/computeRate
		}
	}

	m := Metrics{RawBytesMoved: rawMoved, Migrated: migrated}
	for _, r := range reqs {
		if r.done > m.Makespan {
			m.Makespan = r.done
		}
		if r.active {
			m.Accepted++
		} else {
			m.Bounced++
		}
	}
	return m, nil
}

// decideDOSAS replays the runtime's admission logic over the arrival
// sequence: each newcomer is admitted or bounced by the solver given the
// set of not-yet-finished active requests; with migration enabled, already
// admitted requests flagged "bounce" by the re-solve move to the normal
// path (arrivals are near-simultaneous, so their progress is negligible —
// the migrated remainder is their full size). Returns the migration count.
func decideDOSAS(cfg Config, reqs []*request, storageRate, computeRate float64) int {
	env := core.Env{BW: cfg.BW, StorageRate: storageRate, ComputeRate: computeRate}
	migrated := 0
	var activeSet []*request
	for _, r := range reqs {
		view := make([]core.Request, 0, len(activeSet)+1)
		for _, a := range activeSet {
			view = append(view, core.Request{ID: uint64(a.id + 1), Bytes: a.bytes, ResultBytes: a.result})
		}
		view = append(view, core.Request{ID: uint64(r.id + 1), Bytes: r.bytes, ResultBytes: r.result})
		assignment := cfg.Solver.Solve(view, env)
		if assignment[len(view)-1] {
			r.active = true
			activeSet = append(activeSet, r)
		}
		if *cfg.Migration {
			// Bounce previously admitted requests the policy now rejects.
			keep := activeSet[:0]
			for i, a := range activeSet {
				if a == r || assignment[i] {
					keep = append(keep, a)
					continue
				}
				a.active = false
				a.migrated = true
				migrated++
			}
			activeSet = keep
		}
	}
	return migrated
}
