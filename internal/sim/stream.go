package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"dosas/internal/core"
	"dosas/internal/kernels"
	"dosas/internal/workload"
)

// StreamConfig parameterises a trace-driven simulation: an arbitrary
// request stream (mixed applications, operations, sizes, arrival times,
// and normal/active classes — the paper's Figure 1 scenario) played
// against one storage node.
type StreamConfig struct {
	// Scheme selects TS, AS, or DOSAS handling of the stream's active
	// requests. Normal requests always transfer raw data.
	Scheme core.Scheme
	// BW is the network bandwidth (default 118 MB/s).
	BW float64
	// StorageCores and IOReservedCores size the node (defaults 2 and 1).
	StorageCores    int
	IOReservedCores int
	// Solver drives DOSAS admission (default core.MaxGain).
	Solver core.Solver
	// Noise adds run-to-run variation; Seed makes it reproducible.
	Noise Noise
	Seed  int64
}

// StreamMetrics is the outcome of a trace-driven run.
type StreamMetrics struct {
	// Makespan is when the last request finishes (seconds from stream
	// start).
	Makespan float64
	// MeanLatency and MaxLatency are per-request completion − arrival.
	MeanLatency float64
	MaxLatency  float64
	// MeanNormalLatency isolates the plain (non-active) reads — the
	// traffic the paper's priority rule protects.
	MeanNormalLatency float64
	// RawBytesMoved counts bytes crossing the storage node's NIC.
	RawBytesMoved uint64
	// Accepted and Bounced count the active requests' dispositions.
	Accepted, Bounced int
}

// streamReq tracks one in-flight stream request.
type streamReq struct {
	r     workload.Request
	start float64 // core start (accepted actives)
	end   float64 // core end
	done  float64
}

// RunStream plays a request stream against the storage-node model. Unlike
// Run, arrivals are spread in time, operations and sizes vary per request,
// and plain (normal) reads share the node with active I/O. DOSAS admission
// re-solves at every arrival using each running kernel's remaining bytes;
// already running kernels are not migrated in stream mode.
func RunStream(cfg StreamConfig, reqs []workload.Request) (StreamMetrics, error) {
	if len(reqs) == 0 {
		return StreamMetrics{}, fmt.Errorf("sim: empty request stream")
	}
	if cfg.BW == 0 {
		cfg.BW = 118e6
	}
	if cfg.StorageCores <= 0 {
		cfg.StorageCores = 2
	}
	if cfg.IOReservedCores <= 0 {
		cfg.IOReservedCores = 1
	}
	if cfg.IOReservedCores >= cfg.StorageCores {
		cfg.IOReservedCores = cfg.StorageCores - 1
	}
	if cfg.Solver == nil {
		cfg.Solver = core.MaxGain{}
	}
	if cfg.Scheme != core.SchemeAS && cfg.Scheme != core.SchemeTS && cfg.Scheme != core.SchemeDOSAS {
		return StreamMetrics{}, fmt.Errorf("sim: unknown scheme %v", cfg.Scheme)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bw := cfg.BW
	if cfg.Noise.BWHigh > cfg.Noise.BWLow && cfg.Noise.BWLow > 0 {
		bw = cfg.Noise.BWLow + rng.Float64()*(cfg.Noise.BWHigh-cfg.Noise.BWLow)
	}
	jitter := 1.0
	if cfg.Noise.RateJitter > 0 {
		jitter = 1 + (rng.Float64()*2-1)*cfg.Noise.RateJitter
	}
	overhead := func() float64 {
		if cfg.Noise.OverheadHigh <= cfg.Noise.OverheadLow {
			return 0
		}
		return cfg.Noise.OverheadLow + rng.Float64()*(cfg.Noise.OverheadHigh-cfg.Noise.OverheadLow)
	}

	activeCores := cfg.StorageCores - cfg.IOReservedCores
	storageRate := func(op string) float64 {
		return kernels.RateFor(op) * float64(activeCores) * jitter
	}
	computeRate := func(op string) float64 {
		return kernels.RateFor(op) * jitter
	}
	resultSize := func(op string, bytes uint64) uint64 {
		k, err := kernels.New(op)
		if err != nil {
			return 8
		}
		if err := k.Configure(defaultSimParams(op)); err != nil {
			return 8
		}
		return k.ResultSize(bytes)
	}

	ordered := make([]*streamReq, len(reqs))
	for i := range reqs {
		ordered[i] = &streamReq{r: reqs[i]}
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].r.ArrivalOffset < ordered[j].r.ArrivalOffset
	})

	cores := newPool(activeCores)
	nic := newPool(1)
	type nicJob struct {
		ready   float64
		dur     float64
		sr      *streamReq
		compute float64 // client compute appended after transfer (0 for active results)
	}
	var nicJobs []nicJob
	var accepted []*streamReq // active requests running or queued on cores
	var m StreamMetrics

	for _, sr := range ordered {
		r := sr.r
		t := r.ArrivalOffset
		if !r.Active {
			// Plain read: raw transfer, no kernel anywhere.
			nicJobs = append(nicJobs, nicJob{ready: t, dur: float64(r.Bytes)/bw + overhead(), sr: sr})
			m.RawBytesMoved += r.Bytes
			continue
		}
		if kernels.RateFor(r.Op) <= 0 {
			return StreamMetrics{}, fmt.Errorf("sim: no calibrated rate for op %q", r.Op)
		}
		runActive := true
		switch cfg.Scheme {
		case core.SchemeTS:
			runActive = false
		case core.SchemeDOSAS:
			runActive = streamAdmit(cfg, accepted, sr, t, resultSize)
		}
		if runActive {
			start, end := cores.schedule(t, float64(r.Bytes)/storageRate(r.Op)+overhead())
			sr.start, sr.end = start, end
			res := resultSize(r.Op, r.Bytes)
			nicJobs = append(nicJobs, nicJob{ready: end, dur: float64(res) / bw, sr: sr})
			m.RawBytesMoved += res
			accepted = append(accepted, sr)
			m.Accepted++
		} else {
			nicJobs = append(nicJobs, nicJob{
				ready:   t,
				dur:     float64(r.Bytes)/bw + overhead(),
				sr:      sr,
				compute: float64(r.Bytes) / computeRate(r.Op),
			})
			m.RawBytesMoved += r.Bytes
			m.Bounced++
		}
	}

	sort.SliceStable(nicJobs, func(i, j int) bool { return nicJobs[i].ready < nicJobs[j].ready })
	for _, j := range nicJobs {
		_, end := nic.schedule(j.ready, j.dur)
		j.sr.done = end + j.compute
	}

	var latSum, normalSum float64
	var normalN int
	for _, sr := range ordered {
		lat := sr.done - sr.r.ArrivalOffset
		latSum += lat
		if lat > m.MaxLatency {
			m.MaxLatency = lat
		}
		if sr.done > m.Makespan {
			m.Makespan = sr.done
		}
		if !sr.r.Active {
			normalSum += lat
			normalN++
		}
	}
	m.MeanLatency = latSum / float64(len(ordered))
	if normalN > 0 {
		m.MeanNormalLatency = normalSum / float64(normalN)
	}
	return m, nil
}

// streamAdmit replays DOSAS admission at arrival time t: solve over the
// unfinished accepted actives (by remaining bytes) plus the newcomer.
func streamAdmit(cfg StreamConfig, accepted []*streamReq, sr *streamReq, t float64,
	resultSize func(string, uint64) uint64) bool {
	activeCores := cfg.StorageCores - cfg.IOReservedCores
	env := core.Env{BW: cfg.BW}
	var view []core.Request
	for i, a := range accepted {
		if a.end <= t {
			continue // finished
		}
		frac := 1.0
		if a.start < t && a.end > a.start {
			frac = (a.end - t) / (a.end - a.start)
		}
		remaining := uint64(float64(a.r.Bytes) * frac)
		if remaining == 0 {
			continue
		}
		view = append(view, core.Request{
			ID:          uint64(i + 1),
			Bytes:       remaining,
			ResultBytes: resultSize(a.r.Op, remaining),
			StorageRate: kernels.RateFor(a.r.Op) * float64(activeCores),
			ComputeRate: kernels.RateFor(a.r.Op),
		})
	}
	newID := uint64(len(accepted) + 1000)
	view = append(view, core.Request{
		ID:          newID,
		Bytes:       sr.r.Bytes,
		ResultBytes: resultSize(sr.r.Op, sr.r.Bytes),
		StorageRate: kernels.RateFor(sr.r.Op) * float64(activeCores),
		ComputeRate: kernels.RateFor(sr.r.Op),
	})
	assignment := cfg.Solver.Solve(view, env)
	return assignment[len(view)-1]
}
