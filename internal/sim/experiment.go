package sim

import (
	"fmt"

	"dosas/internal/core"
)

// MB is a binary megabyte, the unit of the paper's request sizes.
const MB = 1 << 20

// PaperScales is the paper's x-axis: concurrent I/O requests per storage
// node (Section IV-A1).
var PaperScales = []int{1, 2, 4, 8, 16, 32, 64}

// PaperSizes are the request data sizes the paper sweeps.
var PaperSizes = []uint64{128 * MB, 256 * MB, 512 * MB, 1024 * MB}

// PaperSchemes are the three evaluated schemes in the paper's order.
var PaperSchemes = []core.Scheme{core.SchemeTS, core.SchemeAS, core.SchemeDOSAS}

// Point is one measurement: a scheme at a request scale.
type Point struct {
	Scheme    core.Scheme
	Requests  int
	Seconds   float64 // total execution time (the figures' y-axis)
	Bandwidth float64 // achieved bytes/second (Figures 11–12 y-axis)
}

// Series simulates the given schemes across the paper's request scales for
// one operation and request size, producing the data behind one
// execution-time or bandwidth figure.
func Series(op string, bytesPerReq uint64, schemes []core.Scheme, noise Noise, seed int64) ([]Point, error) {
	var out []Point
	for _, scheme := range schemes {
		for _, n := range PaperScales {
			m, err := Run(Config{
				Scheme:          scheme,
				Requests:        n,
				BytesPerRequest: bytesPerReq,
				Op:              op,
				Noise:           noise,
				Seed:            seed + int64(n)*31 + int64(scheme)*1009,
			})
			if err != nil {
				return nil, fmt.Errorf("sim: %v n=%d: %w", scheme, n, err)
			}
			out = append(out, Point{Scheme: scheme, Requests: n, Seconds: m.Makespan, Bandwidth: m.Bandwidth})
		}
	}
	return out, nil
}

// Situation is one row of the paper's Table IV: a workload point, the
// scheduling algorithm's noise-free decision, and the empirically best
// choice under realistic noise.
type Situation struct {
	Index    int
	Op       string
	Requests int
	Bytes    uint64
	Decision string // "Active" or "Normal" — the algorithm's choice
	Practice string // which choice actually won in the noisy run
	Correct  bool
}

// decide returns the algorithm's whole-queue decision from the idealised
// model: process as active I/O or as normal I/O.
func decide(op string, n int, bytes uint64) (string, error) {
	cfg := Config{Scheme: core.SchemeAS, Requests: n, BytesPerRequest: bytes, Op: op}
	if err := cfg.applyDefaults(); err != nil {
		return "", err
	}
	activeCores := cfg.StorageCores - cfg.IOReservedCores
	env := core.Env{
		BW:          cfg.BW,
		StorageRate: cfg.StorageRatePerCore * float64(activeCores),
		ComputeRate: cfg.ComputeRatePerCore,
	}
	reqs := make([]core.Request, n)
	for i := range reqs {
		reqs[i] = core.Request{ID: uint64(i + 1), Bytes: bytes, ResultBytes: cfg.ResultBytes}
	}
	if env.TimeAllActive(reqs) <= env.TimeAllNormal(reqs) {
		return "Active", nil
	}
	return "Normal", nil
}

// ScheduleAccuracy regenerates Table IV: for every combination of
// benchmark (SUM, 2-D Gaussian), request scale, and request size, it
// compares the algorithm's model-based decision against the choice that
// actually wins when the same point is executed under Discfarm-like noise.
func ScheduleAccuracy(seed int64) ([]Situation, error) {
	var out []Situation
	idx := 0
	for _, op := range []string{"sum8", "gaussian2d"} {
		for _, n := range PaperScales {
			for _, bytes := range PaperSizes {
				idx++
				decision, err := decide(op, n, bytes)
				if err != nil {
					return nil, err
				}
				runSeed := seed + int64(idx)*7919
				as, err := Run(Config{Scheme: core.SchemeAS, Requests: n, BytesPerRequest: bytes,
					Op: op, Noise: DiscfarmNoise(), Seed: runSeed})
				if err != nil {
					return nil, err
				}
				ts, err := Run(Config{Scheme: core.SchemeTS, Requests: n, BytesPerRequest: bytes,
					Op: op, Noise: DiscfarmNoise(), Seed: runSeed})
				if err != nil {
					return nil, err
				}
				practice := "Active"
				if ts.Makespan < as.Makespan {
					practice = "Normal"
				}
				out = append(out, Situation{
					Index:    idx,
					Op:       op,
					Requests: n,
					Bytes:    bytes,
					Decision: decision,
					Practice: practice,
					Correct:  decision == practice,
				})
			}
		}
	}
	return out, nil
}

// AccuracyRate is the fraction of situations judged correctly.
func AccuracyRate(sits []Situation) float64 {
	if len(sits) == 0 {
		return 0
	}
	correct := 0
	for _, s := range sits {
		if s.Correct {
			correct++
		}
	}
	return float64(correct) / float64(len(sits))
}
