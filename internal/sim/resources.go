package sim

import "container/heap"

// pool is a c-server FCFS resource in virtual time: the storage node's
// kernel cores (c = active cores) or its NIC (c = 1). Jobs must be offered
// in non-decreasing ready order for strict FCFS semantics; both call sites
// do so (arrival order / readiness-sorted).
type pool struct {
	freeAt freeHeap
}

func newPool(servers int) *pool {
	if servers < 1 {
		servers = 1
	}
	p := &pool{freeAt: make(freeHeap, servers)}
	heap.Init(&p.freeAt)
	return p
}

// schedule assigns a job that becomes ready at `ready` and occupies a
// server for `dur` seconds; it returns the start and end times.
func (p *pool) schedule(ready, dur float64) (start, end float64) {
	start = p.freeAt[0]
	if ready > start {
		start = ready
	}
	end = start + dur
	p.freeAt[0] = end
	heap.Fix(&p.freeAt, 0)
	return start, end
}

// freeHeap is a min-heap of server free times.
type freeHeap []float64

func (h freeHeap) Len() int           { return len(h) }
func (h freeHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h freeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *freeHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *freeHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
