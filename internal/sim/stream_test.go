package sim

import (
	"testing"
	"testing/quick"

	"dosas/internal/core"
	"dosas/internal/workload"
)

func gaussStream(n int, bytes uint64, interarrival float64, seed int64) []workload.Request {
	return workload.Stream(workload.StreamConfig{
		Apps:             1,
		RequestsPerApp:   n,
		ActiveFraction:   1,
		Ops:              []string{"gaussian2d"},
		MeanInterarrival: interarrival,
		MinBytes:         bytes,
		MaxBytes:         bytes,
		Seed:             seed,
	})
}

func TestRunStreamBatchMatchesRun(t *testing.T) {
	// A stream of simultaneous homogeneous active requests must behave
	// like the batch simulator (which models exactly that), modulo the
	// batch model's migration (disabled here via scheme AS/TS).
	for _, scheme := range []core.Scheme{core.SchemeAS, core.SchemeTS} {
		reqs := gaussStream(8, 128*MB, 0, 1)
		sm, err := RunStream(StreamConfig{Scheme: scheme}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		off := false
		bm, err := Run(Config{Scheme: scheme, Requests: 8, BytesPerRequest: 128 * MB,
			Op: "gaussian2d", Migration: &off, ArrivalStagger: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		rel := (sm.Makespan - bm.Makespan) / bm.Makespan
		if rel < -0.02 || rel > 0.02 {
			t.Errorf("%v: stream makespan %.3f vs batch %.3f", scheme, sm.Makespan, bm.Makespan)
		}
	}
}

func TestRunStreamDOSASBeatsStaticsOnMixedLoad(t *testing.T) {
	reqs := workload.Stream(workload.StreamConfig{
		Apps:             4,
		RequestsPerApp:   8,
		ActiveFraction:   0.75,
		Ops:              []string{"gaussian2d", "sum8"},
		MeanInterarrival: 0.2,
		MinBytes:         64 * MB,
		MaxBytes:         512 * MB,
		Seed:             7,
	})
	var makespans []float64
	for _, scheme := range PaperSchemes {
		m, err := RunStream(StreamConfig{Scheme: scheme, Seed: 7}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		makespans = append(makespans, m.Makespan)
	}
	ts, as, do := makespans[0], makespans[1], makespans[2]
	best := ts
	if as < best {
		best = as
	}
	if do > best*1.05 {
		t.Errorf("DOSAS %.2f exceeds best static %.2f by >5%% on mixed load", do, best)
	}
}

func TestRunStreamNormalRequestsMoveRawBytes(t *testing.T) {
	reqs := workload.Stream(workload.StreamConfig{
		Apps: 1, RequestsPerApp: 4, ActiveFraction: 0,
		MinBytes: 10 * MB, MaxBytes: 10 * MB, Seed: 3,
	})
	m, err := RunStream(StreamConfig{Scheme: core.SchemeDOSAS}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.RawBytesMoved != 4*10*MB {
		t.Errorf("moved %d", m.RawBytesMoved)
	}
	if m.Accepted != 0 || m.Bounced != 0 {
		t.Errorf("plain reads misclassified: %+v", m)
	}
	if m.MeanNormalLatency == 0 {
		t.Error("normal latency not recorded")
	}
}

func TestRunStreamValidation(t *testing.T) {
	if _, err := RunStream(StreamConfig{Scheme: core.SchemeAS}, nil); err == nil {
		t.Error("empty stream accepted")
	}
	bad := []workload.Request{{Active: true, Op: "bogus", Bytes: 1}}
	if _, err := RunStream(StreamConfig{Scheme: core.SchemeAS}, bad); err == nil {
		t.Error("unknown op accepted")
	}
}

// Property: stream simulation is deterministic and latencies are
// consistent (done ≥ arrival, makespan = max completion).
func TestRunStreamConsistencyProperty(t *testing.T) {
	f := func(seed int64, apps8, per8, frac uint8, scheme8 uint8) bool {
		reqs := workload.Stream(workload.StreamConfig{
			Apps:             int(apps8)%3 + 1,
			RequestsPerApp:   int(per8)%10 + 1,
			ActiveFraction:   float64(frac%101) / 100,
			Ops:              []string{"gaussian2d", "sum8", "histogram"},
			MeanInterarrival: 0.1,
			MinBytes:         MB,
			MaxBytes:         64 * MB,
			Seed:             seed,
		})
		scheme := PaperSchemes[int(scheme8)%3]
		a, err1 := RunStream(StreamConfig{Scheme: scheme, Seed: seed, Noise: DiscfarmNoise()}, reqs)
		b, err2 := RunStream(StreamConfig{Scheme: scheme, Seed: seed, Noise: DiscfarmNoise()}, reqs)
		if err1 != nil || err2 != nil {
			return false
		}
		if a.Makespan != b.Makespan || a.Accepted != b.Accepted {
			return false
		}
		return a.MaxLatency >= 0 && a.MeanLatency <= a.MaxLatency+1e-9 &&
			a.Accepted+a.Bounced <= len(reqs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
