package wire

import (
	"bytes"
	"testing"
)

func TestBufClassBounds(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{1, minBufClass},
		{64, minBufClass},
		{65, 7},
		{128, 7},
		{129, 8},
		{1 << 20, 20},
		{1<<20 + 1, 21},
		{MaxFrameSize, maxBufClass},
	}
	for _, tc := range cases {
		if got := bufClass(tc.n); got != tc.class {
			t.Errorf("bufClass(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}
}

func TestGetBufLengthAndCapacity(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 4096, 1 << 20, 3<<20 + 17} {
		b := GetBuf(n)
		if len(b) != n {
			t.Fatalf("GetBuf(%d): len = %d", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("GetBuf(%d): cap = %d", n, cap(b))
		}
		PutBuf(b)
	}
	// Above the largest class: still served, just unpooled.
	huge := GetBuf(MaxFrameSize + 1)
	if len(huge) != MaxFrameSize+1 {
		t.Fatalf("oversized GetBuf: len = %d", len(huge))
	}
	PutBuf(huge) // must be a safe no-op
}

func TestPutBufRecyclesAcrossGet(t *testing.T) {
	// sync.Pool gives no cross-goroutine guarantees, but a put followed by
	// a get of the same class on one goroutine with no GC in between
	// reuses the buffer in practice — which is exactly the reuse the
	// aliasing rules exist for. Marking the buffer and observing the mark
	// again proves the recycling path works end to end.
	b := GetBuf(1000)
	b[0] = 0xAB
	PutBuf(b)
	c := GetBuf(900) // same 1024-byte class
	if cap(c) != cap(b) || &c[0] != &b[0] {
		t.Skip("pool did not hand the buffer back (GC ran); nothing to assert")
	}
	if c[0] != 0xAB {
		t.Fatal("recycled buffer lost its bytes")
	}
}

func TestPutBufFilesGrownBufferUnderFloorClass(t *testing.T) {
	// A buffer grown by append can have a capacity that is not a power of
	// two. It must be filed under the class it can still fully serve.
	b := make([]byte, 0, 3000) // floor class 11 (2048)
	PutBuf(b)
	got := GetBuf(2048)
	if cap(got) < 2048 {
		t.Fatalf("class-11 buffer has cap %d", cap(got))
	}
	// Too small to pool at all: dropped, never handed back shorter than
	// requested.
	PutBuf(make([]byte, 10))
	small := GetBuf(64)
	if len(small) != 64 {
		t.Fatalf("GetBuf(64): len = %d", len(small))
	}
}

// frameBytes encodes m and returns the raw frame.
func frameBytes(t *testing.T, m Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Aliasing contract, negative side: a message decoded by a FrameReader
// sees its byte fields change when the next same-size frame is read,
// because both decode into the same pooled buffer.
func TestFrameReaderMessagesAliasWithoutOwn(t *testing.T) {
	first := &ReadResp{Data: bytes.Repeat([]byte{0x11}, 256)}
	second := &ReadResp{Data: bytes.Repeat([]byte{0x22}, 256)}
	stream := append(frameBytes(t, first), frameBytes(t, second)...)

	fr := NewFrameReader(bytes.NewReader(stream))
	defer fr.Close()
	m1, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	got := m1.(*ReadResp).Data
	if !bytes.Equal(got, first.Data) {
		t.Fatal("first decode wrong")
	}
	if _, err := fr.Read(); err != nil {
		t.Fatal(err)
	}
	// Same-size frames share the reader's buffer, so the retained slice
	// now shows the second frame's bytes. This test documents the hazard
	// Own exists to solve; if buffering strategy changes and this stops
	// aliasing, the test (and the contract) should be revisited together.
	if !bytes.Equal(got, second.Data) {
		t.Fatal("expected un-Owned message to alias the reader buffer")
	}
}

// Aliasing contract, positive side: Own detaches the message, so it
// survives any number of subsequent reads on the same reader.
func TestOwnDetachesMessageFromFrameReader(t *testing.T) {
	first := &ReadResp{Data: bytes.Repeat([]byte{0x33}, 256), EOF: true}
	second := &ReadResp{Data: bytes.Repeat([]byte{0x44}, 256)}
	stream := append(frameBytes(t, first), frameBytes(t, second)...)

	fr := NewFrameReader(bytes.NewReader(stream))
	defer fr.Close()
	m1, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	owned := Own(m1).(*ReadResp)
	if _, err := fr.Read(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(owned.Data, first.Data) || !owned.EOF {
		t.Fatal("Owned message did not survive the next frame read")
	}
}

// Own must protect every aliasing field of the bulk message types the
// data path retains across frames.
func TestOwnCoversAllAliasingFields(t *testing.T) {
	msgs := []Message{
		&ReadResp{Data: []byte("data")},
		&WriteReq{Handle: 1, Offset: 2, Data: []byte("payload")},
		&ActiveReadReq{Op: "sum", Params: []byte("p"), ResumeState: []byte("s")},
		&ActiveReadResp{Result: []byte("r"), State: []byte("st")},
		&TransformReq{Op: "sum", Params: []byte("p")},
		&StatsResp{Node: "n", Stats: []byte(`{}`)},
		&TraceFetchResp{Node: "n", Events: []byte(`[]`)},
	}
	for _, m := range msgs {
		raw := frameBytes(t, m)
		fr := NewFrameReader(bytes.NewReader(raw))
		decoded, err := fr.Read()
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		Own(decoded)
		// Clobber the reader's buffer wholesale; an Owned message must not
		// notice.
		for i := range fr.buf[:cap(fr.buf)] {
			fr.buf[:cap(fr.buf)][i] = 0xFF
		}
		var before, after bytes.Buffer
		if err := WriteMessage(&before, m); err != nil {
			t.Fatal(err)
		}
		if err := WriteMessage(&after, decoded); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before.Bytes(), after.Bytes()) {
			t.Errorf("%v: Owned message changed when the frame buffer was clobbered", m.Type())
		}
		fr.Close()
	}
}

// WriteMessage recycles its encode buffer before returning, so a writer
// that stashes the slice (violating the io.Writer contract) would observe
// reuse. The transport layer therefore always copies; this test pins the
// invariant that the frame handed to Write is complete and correct at the
// moment of the call.
func TestWriteMessagePooledFrameIsCorrect(t *testing.T) {
	msg := &WriteReq{Handle: 7, Offset: 13, Data: bytes.Repeat([]byte{0x5A}, 1<<10)}
	for i := 0; i < 8; i++ { // repeated writes reuse pooled buffers
		var buf bytes.Buffer
		if err := WriteMessage(&buf, msg); err != nil {
			t.Fatal(err)
		}
		m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		wr := m.(*WriteReq)
		if wr.Handle != 7 || wr.Offset != 13 || !bytes.Equal(wr.Data, msg.Data) {
			t.Fatalf("round %d: frame decoded wrong", i)
		}
	}
}
