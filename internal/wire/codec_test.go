package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	var e Encoder
	e.PutU8(0xAB)
	e.PutBool(true)
	e.PutBool(false)
	e.PutU16(0xBEEF)
	e.PutU32(0xDEADBEEF)
	e.PutU64(0x0102030405060708)
	e.PutI64(-42)
	e.PutF64(3.14159)
	e.PutString("hello, 世界")
	e.PutBytes([]byte{1, 2, 3})
	e.PutU64s([]uint64{7, 8, 9})
	e.PutStrings([]string{"a", "", "c"})
	if err := e.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool sequence wrong")
	}
	if got := d.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0102030405060708 {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.String(); got != "hello, 世界" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	u := d.U64s()
	if len(u) != 3 || u[0] != 7 || u[2] != 9 {
		t.Errorf("U64s = %v", u)
	}
	s := d.Strings()
	if len(s) != 3 || s[0] != "a" || s[1] != "" || s[2] != "c" {
		t.Errorf("Strings = %v", s)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

// Property: every (u64, i64, f64, string, bytes) tuple survives a
// round trip through the codec.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(a uint64, b int64, c float64, s string, raw []byte) bool {
		if len(s) > MaxStringLen {
			s = s[:MaxStringLen]
		}
		var e Encoder
		e.PutU64(a)
		e.PutI64(b)
		e.PutF64(c)
		e.PutString(s)
		e.PutBytes(raw)
		if e.Err() != nil {
			return false
		}
		d := NewDecoder(e.Bytes())
		ga, gb, gc := d.U64(), d.I64(), d.F64()
		gs, graw := d.String(), d.Bytes()
		if d.Err() != nil || d.Remaining() != 0 {
			return false
		}
		sameF := gc == c || (math.IsNaN(gc) && math.IsNaN(c))
		return ga == a && gb == b && sameF && gs == s && bytes.Equal(graw, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderUnderflowIsSticky(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U32()
	if d.Err() != ErrShortPayload {
		t.Fatalf("err = %v, want ErrShortPayload", d.Err())
	}
	// Every subsequent read must return zero values, not panic.
	if d.U64() != 0 || d.String() != "" || d.Bytes() != nil {
		t.Error("reads after error returned non-zero values")
	}
}

func TestDecoderRejectsOversizedCollections(t *testing.T) {
	// A length prefix claiming more elements than the payload can hold
	// must fail before allocating.
	var e Encoder
	e.PutU32(1 << 30) // absurd element count
	d := NewDecoder(e.Bytes())
	if got := d.U64s(); got != nil {
		t.Errorf("U64s = %v, want nil", got)
	}
	if d.Err() == nil {
		t.Error("expected error for oversized U64s")
	}

	var e2 Encoder
	e2.PutU32(1 << 30)
	d2 := NewDecoder(e2.Bytes())
	if got := d2.Strings(); got != nil {
		t.Errorf("Strings = %v, want nil", got)
	}
	if d2.Err() == nil {
		t.Error("expected error for oversized Strings")
	}
}

func TestStringLengthLimit(t *testing.T) {
	var e Encoder
	e.PutString(string(make([]byte, MaxStringLen+1)))
	if e.Err() == nil {
		t.Fatal("expected error encoding oversized string")
	}
}
