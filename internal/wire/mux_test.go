package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// pumpWriter hands each Write (one mux segment) to the test over an
// unbuffered channel, so the writer goroutine is blocked until the test
// consumes the segment — deterministic interleaving tests.
type pumpWriter struct {
	segs chan []byte
}

func (w *pumpWriter) Write(p []byte) (int, error) {
	b := make([]byte, len(p))
	copy(b, p)
	w.segs <- b
	return len(p), nil
}

type segInfo struct {
	t      MsgType
	stream uint32
	class  uint8
	more   bool
	plen   int
}

func parseSeg(t *testing.T, b []byte) segInfo {
	t.Helper()
	if len(b) < muxHdrSize {
		t.Fatalf("segment shorter than header: %d bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if int(n)+4 != len(b) {
		t.Fatalf("segment length field %d does not match %d wire bytes", n, len(b))
	}
	return segInfo{
		t:      MsgType(binary.LittleEndian.Uint16(b[4:6])),
		stream: binary.LittleEndian.Uint32(b[6:10]),
		class:  b[10],
		more:   b[11]&FlagMore != 0,
		plen:   len(b) - muxHdrSize,
	}
}

// A bulk message larger than one segment must be cut into ≤segment
// sub-frames, and a control frame enqueued mid-transfer must hit the wire
// before the bulk message's remaining segments.
func TestMuxWriterControlPreemptsBulk(t *testing.T) {
	pw := &pumpWriter{segs: make(chan []byte)}
	mw := NewMuxWriter(pw, MinMuxSegment)
	defer func() {
		go func() { // drain anything left so Close can flush
			for range pw.segs {
			}
		}()
		mw.Close()
		close(pw.segs)
	}()

	// The idle fast path writes inline, so the bulk Enqueue blocks on the
	// pump until the test consumes its segments — run it aside.
	data := bytes.Repeat([]byte{0xAB}, 3*MinMuxSegment)
	bulkErr := make(chan error, 1)
	go func() {
		bulkErr <- mw.Enqueue(&ReadResp{Data: data}, 7, nil)
	}()

	first := parseSeg(t, <-pw.segs) // writer now blocked before segment 2
	if first.t != MsgReadResp || first.stream != 7 || first.class != ClassBulk {
		t.Fatalf("first segment = %+v", first)
	}
	if !first.more || first.plen != MinMuxSegment {
		t.Fatalf("first segment not a full-sized non-final cut: %+v", first)
	}

	if err := mw.Enqueue(&Ping{Seq: 99}, 8, nil); err != nil {
		t.Fatalf("enqueue control: %v", err)
	}

	var order []segInfo
	for {
		s := parseSeg(t, <-pw.segs)
		order = append(order, s)
		if s.stream == 7 && !s.more {
			break
		}
	}
	pingAt, lastBulkAt := -1, -1
	for i, s := range order {
		if s.stream == 8 {
			if s.t != MsgPing || s.class != ClassControl || s.more {
				t.Fatalf("control segment = %+v", s)
			}
			pingAt = i
		}
		if s.stream == 7 && !s.more {
			lastBulkAt = i
		}
	}
	if pingAt == -1 {
		t.Fatal("control frame never written")
	}
	if pingAt >= lastBulkAt {
		t.Fatalf("control frame at %d did not preempt final bulk segment at %d (order %+v)", pingAt, lastBulkAt, order)
	}
	if err := <-bulkErr; err != nil {
		t.Fatalf("enqueue bulk: %v", err)
	}
}

// Everything written by MuxWriter must reassemble byte-identically
// through MuxReader, across interleaved streams and classes.
func TestMuxRoundTrip(t *testing.T) {
	pr, pw := io.Pipe()
	mw := NewMuxWriter(pw, MinMuxSegment)
	mr := NewMuxReader(pr)
	defer mr.Close()

	want := map[uint32]Message{
		1: &ReadResp{Data: bytes.Repeat([]byte{1}, 5*MinMuxSegment+13), EOF: true},
		2: &Ping{Seq: 42},
		3: &WriteReq{Handle: 9, Offset: 4096, Data: bytes.Repeat([]byte{3}, MinMuxSegment)},
		4: &ErrorMsg{Code: StatusInternal, Op: "read", Detail: "boom"},
		5: &ReadResp{Data: nil, EOF: true},
	}
	var wg sync.WaitGroup
	for stream, m := range want {
		wg.Add(1)
		go func(stream uint32, m Message) {
			defer wg.Done()
			if err := mw.Enqueue(m, stream, nil); err != nil {
				t.Errorf("enqueue %d: %v", stream, err)
			}
		}(stream, m)
	}

	got := make(map[uint32]Message)
	for range want {
		f, err := mr.Read()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if f.Class != ClassOf(f.Msg.Type()) {
			t.Errorf("stream %d: class %d, want %d", f.Stream, f.Class, ClassOf(f.Msg.Type()))
		}
		Own(f.Msg)
		PutBuf(f.Buf)
		got[f.Stream] = f.Msg
	}
	wg.Wait()
	mw.Close()
	pw.Close()

	for stream, m := range want {
		g, ok := got[stream]
		if !ok {
			t.Fatalf("stream %d never arrived", stream)
		}
		var wantBuf, gotBuf Encoder
		m.Encode(&wantBuf)
		g.Encode(&gotBuf)
		if !bytes.Equal(wantBuf.buf, gotBuf.buf) {
			t.Errorf("stream %d: payload mismatch (%d vs %d bytes)", stream, len(gotBuf.buf), len(wantBuf.buf))
		}
	}
}

// A dead connection must fail the in-flight and queued frames exactly
// once each, and fire OnError exactly once.
type failAfterWriter struct {
	n int // successful writes before failing
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("wire gone")
	}
	w.n--
	return len(p), nil
}

func TestMuxWriterFailsPendingOnError(t *testing.T) {
	mw := NewMuxWriter(&failAfterWriter{n: 1}, MinMuxSegment)
	var mu sync.Mutex
	var errs []error
	onErr := 0
	mw.OnError = func(error) { mu.Lock(); onErr++; mu.Unlock() }
	done := func(err error) { mu.Lock(); errs = append(errs, err); mu.Unlock() }

	data := bytes.Repeat([]byte{1}, 4*MinMuxSegment)
	for i := 0; i < 3; i++ {
		mw.Enqueue(&ReadResp{Data: data}, uint32(i+1), done)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(errs)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/3 done callbacks fired", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, err := range errs {
		if err == nil {
			t.Errorf("done %d: nil error on dead writer", i)
		}
	}
	if onErr != 1 {
		t.Errorf("OnError fired %d times, want 1", onErr)
	}
	if err := mw.Enqueue(&Ping{Seq: 1}, 9, nil); err == nil {
		t.Error("Enqueue after death succeeded")
	}
}

// Fuzz the envelope itself: any payload, cut into arbitrary segment sizes
// (hand-built frames, not MuxWriter, so cuts smaller than MinMuxSegment
// are covered), must reassemble to the original message.
func TestMuxSegmentationQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(data []byte, seed int64) bool {
		m := &ReadResp{Data: data, EOF: seed&1 == 0}
		var e Encoder
		m.Encode(&e)
		payload := e.buf

		// cut into 1..len random segments
		r := rand.New(rand.NewSource(seed))
		var wireBuf bytes.Buffer
		off := 0
		for {
			rem := len(payload) - off
			n := rem
			more := false
			if rem > 1 && r.Intn(2) == 0 {
				n = 1 + r.Intn(rem)
				if n < rem {
					more = true
				}
			}
			var hdr [muxHdrSize]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(muxOverhead+n))
			binary.LittleEndian.PutUint16(hdr[4:6], uint16(MsgReadResp))
			binary.LittleEndian.PutUint32(hdr[6:10], 77)
			hdr[10] = ClassBulk
			if more {
				hdr[11] = FlagMore
			}
			wireBuf.Write(hdr[:])
			wireBuf.Write(payload[off : off+n])
			off += n
			if !more {
				break
			}
		}

		mr := NewMuxReader(&wireBuf)
		defer mr.Close()
		fr, err := mr.Read()
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		defer PutBuf(fr.Buf)
		got, ok := fr.Msg.(*ReadResp)
		if !ok || fr.Stream != 77 {
			return false
		}
		return bytes.Equal(got.Data, data) && got.EOF == m.EOF
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Interleaved segments of distinct streams must reassemble independently.
func TestMuxReaderInterleavedStreams(t *testing.T) {
	a := bytes.Repeat([]byte{0xA}, 300)
	b := bytes.Repeat([]byte{0xB}, 500)
	var ea, eb Encoder
	(&ReadResp{Data: a}).Encode(&ea)
	(&ReadResp{Data: b}).Encode(&eb)

	seg := func(buf *bytes.Buffer, stream uint32, payload []byte, more bool) {
		var hdr [muxHdrSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(muxOverhead+len(payload)))
		binary.LittleEndian.PutUint16(hdr[4:6], uint16(MsgReadResp))
		binary.LittleEndian.PutUint32(hdr[6:10], stream)
		hdr[10] = ClassBulk
		if more {
			hdr[11] = FlagMore
		}
		buf.Write(hdr[:])
		buf.Write(payload)
	}
	var wireBuf bytes.Buffer
	seg(&wireBuf, 1, ea.buf[:100], true)
	seg(&wireBuf, 2, eb.buf[:200], true)
	seg(&wireBuf, 1, ea.buf[100:], false)
	seg(&wireBuf, 2, eb.buf[200:], false)

	mr := NewMuxReader(&wireBuf)
	defer mr.Close()
	for i := 0; i < 2; i++ {
		f, err := mr.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		got := f.Msg.(*ReadResp).Data
		want := a
		if f.Stream == 2 {
			want = b
		}
		if !bytes.Equal(got, want) {
			t.Errorf("stream %d: got %d bytes, want %d", f.Stream, len(got), len(want))
		}
		PutBuf(f.Buf)
	}
}

// Garbage bytes must produce an error, never a panic or a hang.
func TestMuxReaderGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(junk []byte) bool {
		mr := NewMuxReader(bytes.NewReader(junk))
		defer mr.Close()
		for {
			_, err := mr.Read()
			if err != nil {
				return true // io errors and protocol errors both fine
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Mid-stream type changes are a protocol violation.
func TestMuxReaderTypeChangeMidStream(t *testing.T) {
	var wireBuf bytes.Buffer
	write := func(tp MsgType, more bool) {
		var hdr [muxHdrSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(muxOverhead+1))
		binary.LittleEndian.PutUint16(hdr[4:6], uint16(tp))
		binary.LittleEndian.PutUint32(hdr[6:10], 5)
		if more {
			hdr[11] = FlagMore
		}
		wireBuf.Write(hdr[:])
		wireBuf.WriteByte(0)
	}
	write(MsgReadResp, true)
	write(MsgWriteResp, false)
	mr := NewMuxReader(&wireBuf)
	defer mr.Close()
	if _, err := mr.Read(); err == nil {
		t.Fatal("type change mid-stream not rejected")
	}
}
