// Package wire implements the binary message protocol spoken between DOSAS
// clients, metadata servers, and storage servers.
//
// Every message travels in a frame:
//
//	+----------+----------+--------------------+
//	| len u32  | type u16 | payload (len-2) B  |
//	+----------+----------+--------------------+
//
// where len counts the type field plus the payload. Payloads are encoded
// with the sticky-error Encoder/Decoder in this package: fixed-width
// little-endian integers, length-prefixed byte strings. The format is
// deliberately hand-rolled (no reflection, no gob) so that framing cost is
// predictable on the I/O fast path and so the protocol is
// language-independent, mirroring PVFS2's BMI message conventions.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// MsgType identifies the kind of message carried in a frame.
type MsgType uint16

// Message type codes. The numeric values are part of the wire format;
// append only, never renumber.
const (
	MsgInvalid MsgType = iota

	// Generic control.
	MsgError
	MsgPing
	MsgPong

	// Metadata operations.
	MsgCreateReq
	MsgCreateResp
	MsgOpenReq
	MsgOpenResp
	MsgStatReq
	MsgStatResp
	MsgRemoveReq
	MsgRemoveResp
	MsgListReq
	MsgListResp
	MsgSetSizeReq
	MsgSetSizeResp

	// Data (stripe) operations.
	MsgReadReq
	MsgReadResp
	MsgWriteReq
	MsgWriteResp
	MsgTruncReq
	MsgTruncResp

	// Active storage operations.
	MsgActiveReadReq
	MsgActiveReadResp
	MsgProbeReq
	MsgProbeResp
	MsgCancelReq
	MsgCancelResp

	// Active transform (write-back) operations.
	MsgTransformReq
	MsgTransformResp

	// Local stream inspection (fsck/repair).
	MsgLocalSizeReq
	MsgLocalSizeResp

	// Observability: structured metrics and trace export.
	MsgStatsReq
	MsgStatsResp
	MsgTraceFetchReq
	MsgTraceFetchResp

	// Telemetry: health probes and time-series history fetch.
	MsgHealthReq
	MsgHealthResp
	MsgSeriesFetchReq
	MsgSeriesFetchResp

	// Decision audit: fetch the scheduler's decision log for offline
	// explanation and counterfactual replay.
	MsgDecisionLogReq
	MsgDecisionLogResp

	// Connection-mode negotiation: upgrade to multiplexed framing (mux.go).
	MsgHelloReq
	MsgHelloResp

	// Operational plane: structured event tail and SLO alert fetch.
	MsgEventFetchReq
	MsgEventFetchResp
	MsgAlertFetchReq
	MsgAlertFetchResp

	// Tenant attribution plane: per-tenant usage fetch.
	MsgTenantStatsReq
	MsgTenantStatsResp

	// Telemetry archive plane: durable range queries.
	MsgRangeQueryReq
	MsgRangeQueryResp

	msgSentinel // keep last
)

var msgNames = map[MsgType]string{
	MsgInvalid:         "invalid",
	MsgError:           "error",
	MsgPing:            "ping",
	MsgPong:            "pong",
	MsgCreateReq:       "create.req",
	MsgCreateResp:      "create.resp",
	MsgOpenReq:         "open.req",
	MsgOpenResp:        "open.resp",
	MsgStatReq:         "stat.req",
	MsgStatResp:        "stat.resp",
	MsgRemoveReq:       "remove.req",
	MsgRemoveResp:      "remove.resp",
	MsgListReq:         "list.req",
	MsgListResp:        "list.resp",
	MsgSetSizeReq:      "setsize.req",
	MsgSetSizeResp:     "setsize.resp",
	MsgReadReq:         "read.req",
	MsgReadResp:        "read.resp",
	MsgWriteReq:        "write.req",
	MsgWriteResp:       "write.resp",
	MsgTruncReq:        "trunc.req",
	MsgTruncResp:       "trunc.resp",
	MsgActiveReadReq:   "activeread.req",
	MsgActiveReadResp:  "activeread.resp",
	MsgProbeReq:        "probe.req",
	MsgProbeResp:       "probe.resp",
	MsgCancelReq:       "cancel.req",
	MsgCancelResp:      "cancel.resp",
	MsgTransformReq:    "transform.req",
	MsgTransformResp:   "transform.resp",
	MsgLocalSizeReq:    "localsize.req",
	MsgLocalSizeResp:   "localsize.resp",
	MsgStatsReq:        "stats.req",
	MsgStatsResp:       "stats.resp",
	MsgTraceFetchReq:   "tracefetch.req",
	MsgTraceFetchResp:  "tracefetch.resp",
	MsgHealthReq:       "health.req",
	MsgHealthResp:      "health.resp",
	MsgSeriesFetchReq:  "seriesfetch.req",
	MsgSeriesFetchResp: "seriesfetch.resp",
	MsgDecisionLogReq:  "decisionlog.req",
	MsgDecisionLogResp: "decisionlog.resp",
	MsgHelloReq:        "hello.req",
	MsgHelloResp:       "hello.resp",
	MsgEventFetchReq:   "eventfetch.req",
	MsgEventFetchResp:  "eventfetch.resp",
	MsgAlertFetchReq:   "alertfetch.req",
	MsgAlertFetchResp:  "alertfetch.resp",
	MsgTenantStatsReq:  "tenantstats.req",
	MsgTenantStatsResp: "tenantstats.resp",
	MsgRangeQueryReq:   "rangequery.req",
	MsgRangeQueryResp:  "rangequery.resp",
}

// String returns a human-readable name for the message type.
func (t MsgType) String() string {
	if s, ok := msgNames[t]; ok {
		return s
	}
	return fmt.Sprintf("msgtype(%d)", uint16(t))
}

// Valid reports whether t is a known message type.
func (t MsgType) Valid() bool { return t > MsgInvalid && t < msgSentinel }

// Message is implemented by every protocol message.
type Message interface {
	// Type returns the wire code for this message.
	Type() MsgType
	// Encode appends the message payload to the encoder.
	Encode(e *Encoder)
	// Decode reads the message payload from the decoder.
	Decode(d *Decoder)
}

// MaxFrameSize bounds a single frame. Stripe transfers are chunked below
// this by the pfs layer; a peer announcing a larger frame is protocol abuse
// and the connection is dropped.
const MaxFrameSize = 64 << 20 // 64 MiB

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
	ErrShortPayload  = errors.New("wire: payload truncated")
	ErrTrailingBytes = errors.New("wire: trailing bytes after payload")
	ErrUnknownType   = errors.New("wire: unknown message type")
)

// sizeHinter lets bulk messages announce an upper bound on their encoded
// size, so WriteMessage can draw a correctly sized pooled buffer instead
// of growing by repeated append.
type sizeHinter interface {
	encodedSizeHint() int
}

// WriteOptions selects how WriteMessageOpts moves a bulk body.
type WriteOptions struct {
	// Stats, when non-nil, counts sendfile/writev/copied bytes for the
	// frames written with these options.
	Stats *FrameStats
	// Plain disables the by-reference fast paths: every frame is
	// materialized in the encode buffer and written contiguously,
	// exactly as WriteMessage always did (A/B benchmarking, and a
	// belt-and-braces escape hatch).
	Plain bool
}

// WriteMessage encodes m into a frame and writes it to w. The frame is
// built in a pooled buffer that is recycled before returning, so w must
// not retain the slice passed to Write (the io.Writer contract).
func WriteMessage(w io.Writer, m Message) error {
	return WriteMessageOpts(w, m, WriteOptions{})
}

// WriteMessageOpts is WriteMessage with a by-reference fast path for
// bulk bodies (payloadCarrier messages): a by-reference Payload is
// streamed between the encoded frame head and tail — sendfile(2) on TCP,
// a pooled staging copy elsewhere — and a memory-backed body of at least
// vectoredMin bytes is coalesced with its head and tail in one vectored
// write (net.Buffers), skipping the encode copy. Either way the bytes on
// the wire are identical to the classic framing, so the receiving side
// is unchanged. Errors after the frame head has been written leave the
// connection mid-frame and must be treated as fatal by the caller (they
// already are: both framings drop the connection on write errors).
func WriteMessageOpts(w io.Writer, m Message, o WriteOptions) error {
	var carrier payloadCarrier
	if pc, ok := m.(payloadCarrier); ok {
		data, p := pc.bulkRef()
		if !o.Plain && (p != nil || len(data) >= vectoredMin) {
			return writeCarrierFrame(w, pc, data, p, o.Stats)
		}
		carrier = pc
	}
	hint := 64
	if s, ok := m.(sizeHinter); ok {
		hint = s.encodedSizeHint() + 6
	}
	var e Encoder
	e.buf = GetBuf(hint)[:6] // room for len+type header
	m.Encode(&e)
	if e.err != nil {
		PutBuf(e.buf)
		return e.err
	}
	if carrier != nil {
		// The bulk body was staged through the encode buffer.
		data, p := carrier.bulkRef()
		if p != nil {
			o.Stats.addCopied(p.Len())
		} else {
			o.Stats.addCopied(int64(len(data)))
		}
	}
	n := len(e.buf) - 4 // frame length excludes the length field itself
	if n > MaxFrameSize {
		PutBuf(e.buf)
		return ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(e.buf[0:4], uint32(n))
	binary.LittleEndian.PutUint16(e.buf[4:6], uint16(m.Type()))
	_, err := w.Write(e.buf)
	PutBuf(e.buf)
	return err
}

// writeCarrierFrame writes one frame whose bulk body travels by
// reference. The head (frame header + everything before the body) and
// tail (everything after) are encoded into one small pooled buffer.
func writeCarrierFrame(w io.Writer, pc payloadCarrier, data []byte, p Payload, st *FrameStats) error {
	var body int64
	if p != nil {
		body = p.Len()
	} else {
		body = int64(len(data))
	}
	var e Encoder
	e.buf = GetBuf(64)[:6]
	pc.encodePre(&e, int(body))
	pre := len(e.buf)
	pc.encodePost(&e)
	if e.err != nil {
		PutBuf(e.buf)
		return e.err
	}
	n := int64(len(e.buf)-4) + body
	if n > MaxFrameSize {
		PutBuf(e.buf)
		return ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(e.buf[0:4], uint32(n))
	binary.LittleEndian.PutUint16(e.buf[4:6], uint16(pc.Type()))
	head, tail := e.buf[:pre], e.buf[pre:]
	flag := cancelFlagOf(pc)
	var err error
	if p != nil {
		if _, err = w.Write(head); err == nil {
			// Stream the body in bounded slices, polling the cancel flag
			// between them: a withdrawn read stops hitting the store and
			// zero-fills the rest of the frame (its length is committed).
			for off := int64(0); off < body && err == nil; {
				if cancelled(flag) {
					st.addCancelled(body - off)
					err = writeZeros(w, body-off, st)
					break
				}
				k := min(body-off, carrierSegment)
				err = p.WriteRange(w, off, k, st)
				off += k
			}
		}
		if err == nil && len(tail) > 0 {
			_, err = w.Write(tail)
		}
	} else if cancelled(flag) {
		// Memory-backed body already cancelled: the bytes are in hand, but
		// zero-fill anyway so the receiver can never act on a withdrawn
		// read's data and accounting sees the cancellation.
		st.addCancelled(body)
		if _, err = w.Write(head); err == nil {
			err = writeZeros(w, body, st)
		}
		if err == nil && len(tail) > 0 {
			_, err = w.Write(tail)
		}
	} else {
		bufs := net.Buffers{head, data}
		if len(tail) > 0 {
			bufs = append(bufs, tail)
		}
		_, err = bufs.WriteTo(w)
		st.addWritev(1)
	}
	PutBuf(e.buf)
	return err
}

// carrierSegment bounds how many body bytes the ordered framing moves
// between cancel-flag polls — the mux framing's segment granularity,
// applied to the contiguous path.
const carrierSegment int64 = 256 << 10

// ReadMessage reads one frame from r and decodes it into a freshly
// allocated message of the announced type. The fast path uses a
// FrameReader instead, which recycles its payload buffer across frames.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < 2 {
		return nil, ErrShortPayload
	}
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	t := MsgType(binary.LittleEndian.Uint16(hdr[4:6]))
	payload := make([]byte, n-2)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return decodeFrame(t, payload)
}

func decodeFrame(t MsgType, payload []byte) (Message, error) {
	m := New(t)
	if m == nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownType, t)
	}
	d := Decoder{buf: payload}
	m.Decode(&d)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, ErrTrailingBytes
	}
	return m, nil
}

// FrameReader decodes frames from one connection, reusing a single pooled
// payload buffer across frames. Byte-slice fields of a returned message
// (ReadResp.Data, WriteReq.Data, ActiveReadReq.Params, ...) may alias
// that buffer and are valid only until the next Read on the same reader;
// callers that retain a message across frames must call Own on it first.
// A FrameReader is not safe for concurrent use.
type FrameReader struct {
	r   io.Reader
	buf []byte // pooled; grown on demand, released by Close
}

// NewFrameReader returns a reader decoding frames from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Read decodes the next frame. See the type comment for the lifetime of
// the returned message's byte fields.
func (fr *FrameReader) Read() (Message, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < 2 {
		return nil, ErrShortPayload
	}
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	t := MsgType(binary.LittleEndian.Uint16(hdr[4:6]))
	need := int(n - 2)
	if cap(fr.buf) < need {
		if fr.buf != nil {
			PutBuf(fr.buf)
		}
		fr.buf = GetBuf(need)
	}
	payload := fr.buf[:need]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, err
	}
	return decodeFrame(t, payload)
}

// Close releases the reader's pooled buffer. The reader must not be used
// afterwards, and no message previously returned by Read may still be in
// use un-Owned.
func (fr *FrameReader) Close() {
	if fr.buf != nil {
		PutBuf(fr.buf)
		fr.buf = nil
	}
}

// Owner is implemented by messages whose decoded byte-slice fields may
// alias a pooled frame buffer. Own copies those fields into private
// memory so the message survives the buffer's reuse.
type Owner interface {
	Own()
}

// Own detaches m from any shared decode buffer and returns it. Messages
// without aliasing fields pass through untouched.
func Own(m Message) Message {
	if o, ok := m.(Owner); ok {
		o.Own()
	}
	return m
}

// detach copies b out of whatever buffer it aliases. Empty slices pass
// through: they carry no bytes to protect.
func detach(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	return append([]byte(nil), b...)
}

// New returns a zero message of the given type, or nil if t is unknown.
func New(t MsgType) Message {
	switch t {
	case MsgError:
		return new(ErrorMsg)
	case MsgPing:
		return new(Ping)
	case MsgPong:
		return new(Pong)
	case MsgCreateReq:
		return new(CreateReq)
	case MsgCreateResp:
		return new(CreateResp)
	case MsgOpenReq:
		return new(OpenReq)
	case MsgOpenResp:
		return new(OpenResp)
	case MsgStatReq:
		return new(StatReq)
	case MsgStatResp:
		return new(StatResp)
	case MsgRemoveReq:
		return new(RemoveReq)
	case MsgRemoveResp:
		return new(RemoveResp)
	case MsgListReq:
		return new(ListReq)
	case MsgListResp:
		return new(ListResp)
	case MsgSetSizeReq:
		return new(SetSizeReq)
	case MsgSetSizeResp:
		return new(SetSizeResp)
	case MsgReadReq:
		return new(ReadReq)
	case MsgReadResp:
		return new(ReadResp)
	case MsgWriteReq:
		return new(WriteReq)
	case MsgWriteResp:
		return new(WriteResp)
	case MsgTruncReq:
		return new(TruncReq)
	case MsgTruncResp:
		return new(TruncResp)
	case MsgActiveReadReq:
		return new(ActiveReadReq)
	case MsgActiveReadResp:
		return new(ActiveReadResp)
	case MsgProbeReq:
		return new(ProbeReq)
	case MsgProbeResp:
		return new(ProbeResp)
	case MsgCancelReq:
		return new(CancelReq)
	case MsgCancelResp:
		return new(CancelResp)
	case MsgTransformReq:
		return new(TransformReq)
	case MsgTransformResp:
		return new(TransformResp)
	case MsgLocalSizeReq:
		return new(LocalSizeReq)
	case MsgLocalSizeResp:
		return new(LocalSizeResp)
	case MsgStatsReq:
		return new(StatsReq)
	case MsgStatsResp:
		return new(StatsResp)
	case MsgTraceFetchReq:
		return new(TraceFetchReq)
	case MsgTraceFetchResp:
		return new(TraceFetchResp)
	case MsgHealthReq:
		return new(HealthReq)
	case MsgHealthResp:
		return new(HealthResp)
	case MsgSeriesFetchReq:
		return new(SeriesFetchReq)
	case MsgSeriesFetchResp:
		return new(SeriesFetchResp)
	case MsgDecisionLogReq:
		return new(DecisionLogReq)
	case MsgDecisionLogResp:
		return new(DecisionLogResp)
	case MsgHelloReq:
		return new(HelloReq)
	case MsgHelloResp:
		return new(HelloResp)
	case MsgEventFetchReq:
		return new(EventFetchReq)
	case MsgEventFetchResp:
		return new(EventFetchResp)
	case MsgAlertFetchReq:
		return new(AlertFetchReq)
	case MsgAlertFetchResp:
		return new(AlertFetchResp)
	case MsgTenantStatsReq:
		return new(TenantStatsReq)
	case MsgTenantStatsResp:
		return new(TenantStatsResp)
	case MsgRangeQueryReq:
		return new(RangeQueryReq)
	case MsgRangeQueryResp:
		return new(RangeQueryResp)
	default:
		return nil
	}
}
