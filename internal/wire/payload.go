package wire

// By-reference bulk payloads: the zero-copy read path. A data server
// answering a bulk read normally stages the bytes twice in user space —
// store → pooled read buffer, read buffer → frame encode buffer — before
// the socket write copies them a third time into kernel space. A Payload
// instead describes where the bytes live (extent files on disk, for the
// extent store) and lets each framing layer move them directly: the frame
// header and trailer are encoded into a small pooled buffer, coalesced
// with memory-backed bodies via vectored writes (net.Buffers/writev), and
// file-backed bodies are pushed with sendfile(2) so they travel page
// cache → socket without ever entering user space.
//
// Ownership: the creator of a Payload (the data server's read handler)
// closes it, via PostWrite, after the response frame has left the
// connection — exactly the PoolBuf lifecycle. The framing layers never
// close payloads; they only read ranges.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
)

// Payload is the by-reference body of a bulk frame. Implementations must
// tolerate concurrent WriteRange calls on disjoint ranges (mux segments
// of one frame are written serially, but a payload may in principle be
// shared) and must serve a stable snapshot length: WriteRange writes
// exactly n bytes even if the backing object shrinks mid-transfer
// (zero-filling the tail), because the frame length is already on the
// wire.
type Payload interface {
	// Len returns the payload's byte length, fixed at creation.
	Len() int64
	// WriteRange writes payload bytes [off, off+n) to w, counting moved
	// bytes into st (which may be nil). It must write exactly n bytes or
	// return an error; a partial write leaves the frame unrecoverable,
	// so callers treat any error as connection-fatal.
	WriteRange(w io.Writer, off, n int64, st *FrameStats) error
	// Close releases backing resources (fd-cache references). Called
	// exactly once, by the payload's creator, after the frame is written
	// or has definitively failed.
	Close() error
}

// FrameStats counts how a connection's frames moved their bytes. One
// struct is typically shared by every connection of a server and mirrored
// into its metrics registry (wire.sendfile_bytes, wire.writev_calls,
// wire.copied_bytes).
type FrameStats struct {
	// SendfileBytes counts payload bytes moved page cache → socket by
	// sendfile(2): zero user-space copies.
	SendfileBytes atomic.Int64
	// WritevCalls counts vectored writes that coalesced a frame header
	// with a by-reference body (one copy saved each).
	WritevCalls atomic.Int64
	// CopiedBytes counts payload bytes staged through user-space buffers
	// by the framing layer: inline frame encodes of bulk bodies and the
	// pooled-copy fallback for payloads on non-TCP connections.
	CopiedBytes atomic.Int64
	// CancelledBytes counts body bytes zero-filled because the response
	// was cancelled mid-frame (hedged-read loser withdrawal): bandwidth
	// the frame still owed the wire but the backing store never served.
	CancelledBytes atomic.Int64
}

// The add helpers are nil-safe so framing code needs no stats plumbing
// conditionals on its hot path.

func (s *FrameStats) addSendfile(n int64) {
	if s != nil && n > 0 {
		s.SendfileBytes.Add(n)
	}
}

func (s *FrameStats) addWritev(n int64) {
	if s != nil {
		s.WritevCalls.Add(n)
	}
}

func (s *FrameStats) addCopied(n int64) {
	if s != nil && n > 0 {
		s.CopiedBytes.Add(n)
	}
}

func (s *FrameStats) addCancelled(n int64) {
	if s != nil && n > 0 {
		s.CancelledBytes.Add(n)
	}
}

// cancelCarrier is implemented by messages that expose a cancellation
// flag the frame writers poll between bulk segments (ReadResp). A nil
// flag means not cancellable.
type cancelCarrier interface {
	cancelFlag() *atomic.Bool
}

// cancelFlagOf extracts the cancel flag from a message, nil when the
// message is not cancellable.
func cancelFlagOf(m Message) *atomic.Bool {
	if cc, ok := m.(cancelCarrier); ok {
		return cc.cancelFlag()
	}
	return nil
}

// cancelled is a nil-safe flag check.
func cancelled(f *atomic.Bool) bool { return f != nil && f.Load() }

// payloadCarrier is implemented by bulk messages whose wire body is a
// single length-prefixed byte string that the framing layers may write by
// reference instead of materializing in the encode buffer. The split
// encode must concatenate to exactly the bytes Encode would produce:
// encodePre (everything before the body bytes, including the body's
// length prefix) + body + encodePost (everything after). That keeps the
// frame byte-identical to the classic path, so receivers — old peers
// included — need no changes.
type payloadCarrier interface {
	Message
	// bulkRef returns the body by reference: the raw bytes for a
	// memory-backed message, or a Payload for a store-backed one (at
	// most one is non-nil).
	bulkRef() (data []byte, p Payload)
	// encodePre appends the wire bytes preceding the body, for a body of
	// bodyLen bytes.
	encodePre(e *Encoder, bodyLen int)
	// encodePost appends the wire bytes following the body.
	encodePost(e *Encoder)
}

// vectoredMin is the smallest memory-backed body worth a vectored write;
// below it the inline encode copy is cheaper than assembling iovecs.
const vectoredMin = 16 << 10

// errPayloadRange is returned by WriteRange for out-of-bounds requests.
var errPayloadRange = errors.New("wire: payload range out of bounds")

// FileSection is one contiguous piece of a FilePayload: N bytes read from
// F starting at Off, or — when F is nil — N bytes of zeros (a hole in the
// backing store).
type FileSection struct {
	F   *os.File
	Off int64
	N   int64
}

// FilePayload serves a bulk body from one or more file ranges (the extent
// store's on-disk extents). On a *net.TCPConn the file ranges move via
// sendfile(2) with explicit offsets, so concurrent payloads can share the
// fd-cache's descriptors without racing on file positions; on any other
// writer (in-process transports, shaped links, non-Linux builds) the
// ranges are staged through one pooled buffer. Sections shorter than
// announced — the backing file shrank after the payload was built — are
// zero-filled to the section length, honoring the frame length already
// announced on the wire.
type FilePayload struct {
	secs    []FileSection
	n       int64
	release func()
	once    sync.Once

	// noSendfile latches after the kernel or destination declines
	// sendfile, so every later section of this payload skips the probe.
	noSendfile bool
}

// NewFilePayload returns a payload over secs. release (optional) runs
// once on Close — the hook through which the extent store drops its
// fd-cache references.
func NewFilePayload(secs []FileSection, release func()) *FilePayload {
	var n int64
	for _, s := range secs {
		n += s.N
	}
	return &FilePayload{secs: secs, n: n, release: release}
}

// Len implements Payload.
func (p *FilePayload) Len() int64 { return p.n }

// Close implements Payload.
func (p *FilePayload) Close() error {
	p.once.Do(func() {
		if p.release != nil {
			p.release()
		}
	})
	return nil
}

// WriteRange implements Payload.
func (p *FilePayload) WriteRange(w io.Writer, off, n int64, st *FrameStats) error {
	if off < 0 || n < 0 || off+n > p.n {
		return errPayloadRange
	}
	for _, sec := range p.secs {
		if n == 0 {
			break
		}
		if off >= sec.N {
			off -= sec.N
			continue
		}
		k := min(sec.N-off, n)
		var err error
		if sec.F == nil {
			err = writeZeros(w, k, st)
		} else {
			err = p.writeFileRange(w, sec.F, sec.Off+off, k, st)
		}
		if err != nil {
			return err
		}
		off = 0
		n -= k
	}
	return nil
}

// payloadCopyChunk sizes the pooled staging buffer of the copy fallback.
const payloadCopyChunk = 256 << 10

func (p *FilePayload) writeFileRange(w io.Writer, f *os.File, off, n int64, st *FrameStats) error {
	if !p.noSendfile {
		if tcp, ok := w.(*net.TCPConn); ok {
			written, handled, err := rawSendfile(tcp, f, off, n, st)
			if handled {
				if err != nil {
					return err
				}
				if written < n {
					// Source shorter than announced (it shrank after the
					// payload was built): zero-fill the tail.
					return writeZeros(w, n-written, st)
				}
				return nil
			}
			p.noSendfile = true
		}
	}
	buf := GetBuf(int(min(n, payloadCopyChunk)))
	defer PutBuf(buf)
	for n > 0 {
		k := int(min(n, int64(len(buf))))
		m, rerr := f.ReadAt(buf[:k], off)
		if m < k {
			// EOF short read: the frame promised k more bytes, fill with
			// zeros. Any other read error is connection-fatal (the frame
			// header is already on the wire).
			if rerr != nil && !errors.Is(rerr, io.EOF) {
				return fmt.Errorf("wire: payload read: %w", rerr)
			}
			clear(buf[m:k])
		}
		if _, werr := w.Write(buf[:k]); werr != nil {
			return werr
		}
		st.addCopied(int64(k))
		off += int64(k)
		n -= int64(k)
	}
	return nil
}

// zeroChunk backs hole writes; read-only.
var zeroChunk [32 << 10]byte

func writeZeros(w io.Writer, n int64, st *FrameStats) error {
	for n > 0 {
		k := min(n, int64(len(zeroChunk)))
		if _, err := w.Write(zeroChunk[:k]); err != nil {
			return err
		}
		st.addCopied(k)
		n -= k
	}
	return nil
}

// PutPayload appends a length-prefixed byte string whose bytes come from
// p — the inline fallback for encode paths without a streaming fast path
// (classic WriteMessage below the vectored threshold, client-side
// re-encodes). The materialization is itself a copy, so callers that
// count copies do so at their layer.
func (e *Encoder) PutPayload(p Payload) {
	if e.err != nil {
		return
	}
	n64 := p.Len()
	if n64 < 0 || n64 > MaxFrameSize {
		e.err = ErrFrameTooLarge
		return
	}
	e.PutU32(uint32(n64))
	n := int(n64)
	off := len(e.buf)
	if cap(e.buf)-off < n {
		nb := GetBuf(off + n)[:off]
		copy(nb, e.buf)
		PutBuf(e.buf)
		e.buf = nb
	}
	e.buf = e.buf[:off+n]
	sw := sliceWriter{buf: e.buf[off:off]}
	if err := p.WriteRange(&sw, 0, n64, nil); err != nil {
		e.err = err
		return
	}
	if len(sw.buf) != n {
		e.err = io.ErrUnexpectedEOF
	}
}

// sliceWriter appends into a fixed-capacity slice region.
type sliceWriter struct {
	buf []byte
}

func (w *sliceWriter) Write(p []byte) (int, error) {
	if len(w.buf)+len(p) > cap(w.buf) {
		return 0, io.ErrShortBuffer
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}
