package wire

// Multiplexed framing: the post-handshake connection mode negotiated by
// HelloReq/HelloResp (messages.go). The classic framing in wire.go is one
// strictly ordered exchange at a time, so a 4 MB ReadResp stalls every
// control message queued behind it. Mux framing tags every frame with a
// stream ID and a priority class, segments bulk payloads into small
// sub-frames, and lets a writer interleave control frames between the
// segments of an in-flight bulk message — the BMI/HTTP/2 shape.
//
// Mux frame layout (little-endian, after both sides commit to mux):
//
//	len     u32  // counts everything after itself: type..payload
//	type    u16  // MsgType of the (whole, reassembled) message
//	stream  u32  // correlates segments and matches responses to requests
//	class   u8   // ClassControl or ClassBulk; receiver-advisory
//	flags   u8   // FlagMore: another segment of this stream's message follows
//	payload []byte
//
// A message is the concatenation of its segments' payloads in arrival
// order; segments of distinct streams interleave freely, segments of one
// stream never reorder (single writer per direction). The reassembled
// payload decodes exactly like a classic frame body.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// MuxVersion is the highest mux protocol version this build speaks.
const MuxVersion = 1

// Segment sizing. DefaultMuxSegment bounds how long a control frame can
// be stuck behind an already-started bulk write: 256 KiB is ~30 µs on a
// 10 GbE link and ~4 ms on the 64 MB/s shaped links the benches use.
const (
	DefaultMuxSegment = 256 << 10
	MinMuxSegment     = 4 << 10
)

// Priority classes. Control frames always jump the writer's queue; bulk
// frames share the link in FIFO order, one segment at a time.
const (
	ClassControl uint8 = 0
	ClassBulk    uint8 = 1
)

// FlagMore marks a non-final segment.
const FlagMore uint8 = 1 << 0

const (
	muxHdrSize  = 12 // len + type + stream + class + flags
	muxOverhead = 8  // bytes counted by len besides the payload

	// maxMuxAssembling bounds concurrently half-received streams per
	// connection; beyond it the peer is abusing the protocol.
	maxMuxAssembling = 1024
)

// ErrMuxClosed is returned by Enqueue after Close.
var ErrMuxClosed = errors.New("wire: mux writer closed")

// ClassOf maps a message type to its wire priority class: stripe-transfer
// carriers are bulk, everything else (Ping, Probe, Cancel, Stats, Health,
// errors, metadata ops, ...) is control.
func ClassOf(t MsgType) uint8 {
	switch t {
	case MsgReadReq, MsgReadResp, MsgWriteReq, MsgWriteResp,
		MsgActiveReadReq, MsgActiveReadResp, MsgTransformReq, MsgTransformResp:
		return ClassBulk
	}
	return ClassControl
}

// muxFrame is one fully encoded message queued for writing. The payload
// lives at buf[muxHdrSize:]; the header of each segment is written in
// place immediately before that segment's payload bytes (clobbering the
// tail of the previous, already-written segment), so each segment goes
// out as a single contiguous Write with zero copying.
//
// A by-reference frame (p != nil) instead keeps only the encoded head
// and tail in buf — buf[muxHdrSize:muxHdrSize+pre] precedes the body,
// the rest follows it — and streams the body from p segment by segment:
// each segment's header (+ any head/tail overlap) goes out as one
// vectored write, then the body range via the payload's sendfile or
// staging-copy path. The frame's done callback, not finish, owns the
// payload's Close (the data server's PostWrite hook).
type muxFrame struct {
	t      MsgType
	stream uint32
	class  uint8
	buf    []byte // pooled: [muxHdrSize header room][payload or head+tail]
	off    int    // payload bytes already written
	done   func(error)

	// By-reference body (zero-copy read path).
	p    Payload
	pre  int   // head bytes in buf after the header room
	body int64 // p's length, snapshotted at enqueue

	// cancel, when non-nil, is polled between segments: once true the
	// remaining body bytes go out as zeros (a withdrawn hedged read stops
	// consuming store bandwidth while the stream stays well-formed).
	cancel *atomic.Bool
}

// payloadLen returns the frame's logical payload length: the bytes that
// travel inside its segments, after their 12-byte headers.
func (f *muxFrame) payloadLen() int {
	if f.p != nil {
		return len(f.buf) - muxHdrSize + int(f.body)
	}
	return len(f.buf) - muxHdrSize
}

func (f *muxFrame) finish(err error) {
	PutBuf(f.buf)
	f.buf = nil
	if f.done != nil {
		f.done(err)
	}
}

// MuxWriter serializes mux frames onto one connection from many
// goroutines, writing every queued control frame before the next bulk
// segment. Bulk payloads are cut into ≤segment-byte sub-frames so a
// control frame waits at most one segment.
//
// Whoever holds the write token (writing == true) drains the lanes.
// When the link is idle, Enqueue takes the token and writes its own
// frame from the calling goroutine — a queue handoff to the writer
// goroutine costs a scheduler wakeup (tens to hundreds of µs on an
// otherwise idle machine), which would tax every frame of a
// latency-bound pipeline. The writer goroutine only takes over when
// frames actually queue behind each other, i.e. when the link is busy
// and the wakeup is amortized.
type MuxWriter struct {
	w       io.Writer
	segment int

	// DepthHook, if set, observes queue depth: +1 when a frame of class
	// is enqueued, -1 when it finishes (written or failed). OnError, if
	// set, fires once when the writer dies. Both must be set before the
	// first Enqueue and must not block.
	DepthHook func(class uint8, delta int)
	OnError   func(error)

	// Stats, if set before the first Enqueue, counts how bulk bodies
	// moved (sendfile/writev/copied). Plain disables the by-reference
	// payload path: payload-carrying messages are materialized into
	// their frame buffer like any other (A/B benchmarking).
	Stats *FrameStats
	Plain bool

	// scratch holds the segment header of by-reference frames (their
	// buf has no room for in-place clobbering); vecs is the reusable
	// iovec list. Both are touched only by the write-token holder.
	scratch [muxHdrSize]byte
	vecs    net.Buffers

	mu       sync.Mutex
	cond     *sync.Cond
	control  []*muxFrame
	bulk     []*muxFrame
	cur      *muxFrame // bulk frame partially on the wire
	writing  bool      // write token: one goroutine drains at a time
	err      error
	closed   bool
	finished chan struct{}
}

// NewMuxWriter starts the writer goroutine. Close must be called
// eventually or the goroutine leaks.
func NewMuxWriter(w io.Writer, segment int) *MuxWriter {
	if segment < MinMuxSegment {
		segment = MinMuxSegment
	}
	mw := &MuxWriter{w: w, segment: segment, finished: make(chan struct{})}
	mw.vecs = make(net.Buffers, 0, 4)
	mw.cond = sync.NewCond(&mw.mu)
	go mw.loop()
	return mw
}

// Enqueue encodes m and queues it for stream with m's ClassOf priority.
// done (optional) is invoked exactly once — from the writer goroutine,
// or from the enqueueing goroutine when the idle fast path writes the
// frame inline: with nil after the final segment is on the wire, or
// with the failure when the frame cannot be written — including when
// Enqueue itself returns an error. The return value is therefore
// advisory; correctness hangs off done. Enqueue may block for the
// duration of writing this frame (as a plain WriteMessage would), but
// never behind another caller's queued bulk.
func (mw *MuxWriter) Enqueue(m Message, stream uint32, done func(error)) error {
	if pc, ok := m.(payloadCarrier); ok && !mw.Plain {
		data, p := pc.bulkRef()
		if p != nil {
			return mw.enqueueRef(pc, p, stream, done)
		}
		if cancelFlagOf(pc) != nil {
			// Cancellable memory-backed bulk: record the body's offsets so
			// a mid-frame cancel can zero exactly the body bytes.
			return mw.enqueueData(pc, data, stream, done)
		}
	}
	hint := 64
	if s, ok := m.(sizeHinter); ok {
		hint = s.encodedSizeHint() + muxHdrSize
	}
	var e Encoder
	e.buf = GetBuf(hint)[:muxHdrSize]
	m.Encode(&e)
	err := e.err
	if err == nil && len(e.buf)-muxHdrSize+muxOverhead > MaxFrameSize {
		err = ErrFrameTooLarge
	}
	if err != nil {
		PutBuf(e.buf)
		if done != nil {
			done(err)
		}
		return err
	}
	if pc, ok := m.(payloadCarrier); ok {
		// The bulk body was staged through the frame buffer (MemStore
		// reads, and everything in Plain mode).
		data, p := pc.bulkRef()
		if p != nil {
			mw.Stats.addCopied(p.Len())
		} else {
			mw.Stats.addCopied(int64(len(data)))
		}
	}
	f := &muxFrame{t: m.Type(), stream: stream, class: ClassOf(m.Type()), buf: e.buf, done: done,
		cancel: cancelFlagOf(m)}
	return mw.submit(f)
}

// enqueueData queues a memory-backed bulk frame that may be withdrawn
// mid-write. Unlike the generic path, the body's position inside the
// buffer is recorded (pre/body), so writeSegments can zero-fill the
// remaining body bytes on cancellation without clobbering the envelope
// fields around them — the stream must stay decodable.
func (mw *MuxWriter) enqueueData(pc payloadCarrier, data []byte, stream uint32, done func(error)) error {
	var e Encoder
	e.buf = GetBuf(64 + len(data))[:muxHdrSize]
	pc.encodePre(&e, len(data))
	pre := len(e.buf) - muxHdrSize
	e.buf = append(e.buf, data...)
	pc.encodePost(&e)
	err := e.err
	if err == nil && len(e.buf)-muxHdrSize+muxOverhead > MaxFrameSize {
		err = ErrFrameTooLarge
	}
	if err != nil {
		PutBuf(e.buf)
		if done != nil {
			done(err)
		}
		return err
	}
	mw.Stats.addCopied(int64(len(data)))
	f := &muxFrame{t: pc.Type(), stream: stream, class: ClassOf(pc.Type()),
		buf: e.buf, done: done, pre: pre, body: int64(len(data)),
		cancel: cancelFlagOf(pc)}
	return mw.submit(f)
}

// enqueueRef queues a by-reference bulk frame: only the head and tail
// are encoded; the body streams from p at write time.
func (mw *MuxWriter) enqueueRef(pc payloadCarrier, p Payload, stream uint32, done func(error)) error {
	body := p.Len()
	var e Encoder
	e.buf = GetBuf(64)[:muxHdrSize]
	pc.encodePre(&e, int(body))
	pre := len(e.buf) - muxHdrSize
	pc.encodePost(&e)
	err := e.err
	if err == nil && int64(len(e.buf)-muxHdrSize+muxOverhead)+body > MaxFrameSize {
		err = ErrFrameTooLarge
	}
	if err != nil {
		PutBuf(e.buf)
		if done != nil {
			done(err)
		}
		return err
	}
	f := &muxFrame{t: pc.Type(), stream: stream, class: ClassOf(pc.Type()),
		buf: e.buf, done: done, p: p, pre: pre, body: body,
		cancel: cancelFlagOf(pc)}
	return mw.submit(f)
}

// submit queues f and runs the idle fast path or signals the writer
// goroutine, exactly as Enqueue documents.
func (mw *MuxWriter) submit(f *muxFrame) error {
	mw.mu.Lock()
	if mw.err != nil || mw.closed {
		werr := mw.err
		mw.mu.Unlock()
		if werr == nil {
			werr = ErrMuxClosed
		}
		f.finish(werr)
		return werr
	}
	idle := !mw.writing && !mw.hasWorkLocked()
	if f.class == ClassControl {
		mw.control = append(mw.control, f)
	} else {
		mw.bulk = append(mw.bulk, f)
	}
	if mw.DepthHook != nil {
		mw.DepthHook(f.class, +1)
	}
	if !idle {
		// Busy: the current token holder re-checks the lanes before
		// releasing, so the frame is guaranteed a writer. The signal
		// covers the parked writer goroutine.
		mw.cond.Signal()
		mw.mu.Unlock()
		return nil
	}
	// Idle fast path: write f from this goroutine, skipping the wakeup.
	mw.writing = true
	err := mw.drainLocked(f)
	mw.writing = false
	mw.cond.Broadcast()
	mw.mu.Unlock()
	return err
}

// hasWorkLocked reports whether any frame is queued or partially
// written. Caller holds mw.mu.
func (mw *MuxWriter) hasWorkLocked() bool {
	return len(mw.control) > 0 || len(mw.bulk) > 0 || mw.cur != nil
}

// Close flushes already-queued frames, stops the writer goroutine and
// waits for it to exit. Subsequent Enqueues fail with ErrMuxClosed.
func (mw *MuxWriter) Close() error {
	mw.mu.Lock()
	mw.closed = true
	mw.cond.Broadcast()
	mw.mu.Unlock()
	<-mw.finished
	mw.mu.Lock()
	err := mw.err
	mw.mu.Unlock()
	return err
}

func (mw *MuxWriter) loop() {
	defer close(mw.finished)
	mw.mu.Lock()
	defer mw.mu.Unlock()
	for {
		for mw.err == nil && (mw.writing || !mw.hasWorkLocked()) {
			if mw.closed && !mw.writing && !mw.hasWorkLocked() {
				return
			}
			mw.cond.Wait()
		}
		if mw.err != nil {
			return
		}
		mw.writing = true
		mw.drainLocked(nil) //nolint:errcheck // recorded in mw.err
		mw.writing = false
		mw.cond.Broadcast()
	}
}

// drainLocked writes queued frames until no work is eligible or the
// writer dies, draining every queued control frame before each bulk
// segment. With inlineFor == nil (the writer goroutine) it drains
// everything. With inlineFor set (the Enqueue fast path) it writes all
// control frames plus at most that one bulk frame, so an enqueuer is
// never drafted into pushing another caller's bulk backlog; leftover
// bulk is handed to the writer goroutine by the caller's Broadcast.
// Called with mw.mu held and the write token owned; returns with mw.mu
// held. Returns the write error, if any (also recorded in mw.err).
func (mw *MuxWriter) drainLocked(inlineFor *muxFrame) error {
	for mw.err == nil {
		var f *muxFrame
		control := false
		switch {
		case len(mw.control) > 0:
			f = mw.control[0]
			mw.control = mw.control[1:]
			control = true
		case mw.cur != nil:
			f = mw.cur
		case len(mw.bulk) > 0 && (inlineFor == nil || mw.bulk[0] == inlineFor):
			mw.cur = mw.bulk[0]
			mw.bulk = mw.bulk[1:]
			f = mw.cur
		default:
			return nil
		}
		mw.mu.Unlock()

		var full bool
		var err error
		if control {
			// Control frames are small: write all their segments
			// back to back rather than round-tripping the queue.
			full, err = mw.writeSegments(f, -1)
		} else {
			full, err = mw.writeSegments(f, 1)
		}
		if err != nil {
			mw.retire(f, err)
			if !control {
				mw.mu.Lock()
				mw.cur = nil
				mw.mu.Unlock()
			}
			mw.die(err)
			mw.mu.Lock()
			return err
		}
		if full && !control {
			mw.mu.Lock()
			mw.cur = nil
			mw.mu.Unlock()
		}
		if full {
			mw.retire(f, nil)
		}
		mw.mu.Lock()
	}
	return mw.err
}

// writeSegments writes up to maxSegs segments of f (all of them if
// maxSegs < 0). Reports whether the frame is fully written.
func (mw *MuxWriter) writeSegments(f *muxFrame, maxSegs int) (bool, error) {
	total := f.payloadLen()
	for segs := 0; maxSegs < 0 || segs < maxSegs; segs++ {
		n := total - f.off
		var flags uint8
		// Cut at the segment size, but let a final segment run up to 25%
		// over instead of spawning a tiny trailer: payloads just past the
		// boundary (a chunk plus its envelope fields) stay one segment,
		// and the extra control-frame wait is bounded at segment/4 bytes.
		if n > mw.segment+mw.segment/4 {
			n = mw.segment
			flags = FlagMore
		}
		if f.p != nil {
			if err := mw.writeRefSegment(f, n, flags); err != nil {
				return false, err
			}
			f.off += n
			if flags == 0 {
				return true, nil
			}
			continue
		}
		hdr := f.buf[f.off : f.off+muxHdrSize]
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(muxOverhead+n))
		binary.LittleEndian.PutUint16(hdr[4:6], uint16(f.t))
		binary.LittleEndian.PutUint32(hdr[6:10], f.stream)
		hdr[10] = f.class
		hdr[11] = flags
		if cancelled(f.cancel) {
			// Withdrawn mid-frame: the remaining segments still go out (the
			// peer expects them) but the body bytes they carry are zeroed,
			// segment by segment. The envelope fields around the body are
			// left intact so the frame still decodes.
			bs, be := max(f.off, f.pre), min(f.off+n, f.pre+int(f.body))
			if be > bs {
				clear(f.buf[muxHdrSize+bs : muxHdrSize+be])
				mw.Stats.addCancelled(int64(be - bs))
			}
		}
		if _, err := mw.w.Write(f.buf[f.off : f.off+muxHdrSize+n]); err != nil {
			return false, err
		}
		f.off += n
		if flags == 0 {
			return true, nil
		}
	}
	return false, nil
}

// writeRefSegment writes one n-byte segment of a by-reference frame
// starting at logical payload offset f.off. The segment header and any
// head/tail bytes it covers are coalesced into one vectored write; the
// body range streams through the payload (sendfile on TCP, pooled copy
// elsewhere). The caller holds the write token, so scratch and vecs are
// exclusively ours.
func (mw *MuxWriter) writeRefSegment(f *muxFrame, n int, flags uint8) error {
	hdr := mw.scratch[:]
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(muxOverhead+n))
	binary.LittleEndian.PutUint16(hdr[4:6], uint16(f.t))
	binary.LittleEndian.PutUint32(hdr[6:10], f.stream)
	hdr[10] = f.class
	hdr[11] = flags

	off, end := f.off, f.off+n
	bodyEnd := f.pre + int(f.body)
	bufs := append(mw.vecs[:0], hdr)
	if off < f.pre {
		bufs = append(bufs, f.buf[muxHdrSize+off:muxHdrSize+min(end, f.pre)])
	}
	var tail []byte // segment's slice of the post-body bytes
	if end > bodyEnd {
		ts := max(off, bodyEnd) - bodyEnd
		tail = f.buf[muxHdrSize+f.pre+ts : muxHdrSize+f.pre+(end-bodyEnd)]
	}
	bs, be := max(off, f.pre)-f.pre, min(end, bodyEnd)-f.pre
	if be > bs {
		// Flush header (+ head overlap) first, then stream the body.
		if _, err := bufs.WriteTo(mw.w); err != nil {
			return err
		}
		mw.Stats.addWritev(1)
		if cancelled(f.cancel) {
			// Withdrawn mid-frame: the segment's body range goes out as
			// zeros instead of touching the store.
			mw.Stats.addCancelled(int64(be - bs))
			if err := writeZeros(mw.w, int64(be-bs), mw.Stats); err != nil {
				return err
			}
		} else if err := f.p.WriteRange(mw.w, int64(bs), int64(be-bs), mw.Stats); err != nil {
			return err
		}
		if len(tail) > 0 {
			if _, err := mw.w.Write(tail); err != nil {
				return err
			}
		}
		return nil
	}
	if len(tail) > 0 {
		bufs = append(bufs, tail)
	}
	_, err := bufs.WriteTo(mw.w)
	mw.Stats.addWritev(1)
	return err
}

// retire releases f and tells the depth hook it left the queue.
func (mw *MuxWriter) retire(f *muxFrame, err error) {
	if mw.DepthHook != nil {
		mw.DepthHook(f.class, -1)
	}
	f.finish(err)
}

// die records the first write error, fails every queued frame, and fires
// OnError. The writer goroutine exits right after.
func (mw *MuxWriter) die(err error) {
	mw.mu.Lock()
	if mw.err == nil {
		mw.err = err
	}
	control, bulk := mw.control, mw.bulk
	mw.control, mw.bulk, mw.cur = nil, nil, nil
	mw.cond.Broadcast()
	mw.mu.Unlock()
	for _, f := range control {
		mw.retire(f, err)
	}
	for _, f := range bulk {
		mw.retire(f, err)
	}
	if mw.OnError != nil {
		mw.OnError(err)
	}
}

// MuxFrame is one reassembled message delivered by MuxReader.Read. Msg
// may alias Buf (a pooled buffer): the receiver owns Buf and must
// wire.PutBuf it once Msg — or any byte field of it not detached via
// Own — is no longer needed.
type MuxFrame struct {
	Stream uint32
	Class  uint8
	Msg    Message
	Buf    []byte
}

// muxAsm is a stream's partially received message.
type muxAsm struct {
	t     MsgType
	class uint8
	buf   []byte // pooled
}

// MuxReader reassembles mux frames from one connection. Not safe for
// concurrent use (one demux goroutine per connection owns it).
type MuxReader struct {
	r   io.Reader
	asm map[uint32]*muxAsm
}

// NewMuxReader returns a reader decoding mux frames from r.
func NewMuxReader(r io.Reader) *MuxReader {
	return &MuxReader{r: r, asm: make(map[uint32]*muxAsm)}
}

// Read returns the next complete message, transparently reassembling
// segmented streams. See MuxFrame for buffer ownership.
func (mr *MuxReader) Read() (MuxFrame, error) {
	for {
		var hdr [muxHdrSize]byte
		if _, err := io.ReadFull(mr.r, hdr[:]); err != nil {
			return MuxFrame{}, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n < muxOverhead {
			return MuxFrame{}, ErrShortPayload
		}
		if n > MaxFrameSize {
			return MuxFrame{}, ErrFrameTooLarge
		}
		t := MsgType(binary.LittleEndian.Uint16(hdr[4:6]))
		stream := binary.LittleEndian.Uint32(hdr[6:10])
		class := hdr[10]
		more := hdr[11]&FlagMore != 0
		plen := int(n - muxOverhead)

		a := mr.asm[stream]
		if a == nil {
			// When more segments are coming, draw a buffer a class up so
			// the common two-segment message assembles without a grow-copy.
			hint := plen
			if more {
				hint = 2 * plen
			}
			a = &muxAsm{t: t, class: class, buf: GetBuf(hint)[:0]}
		} else if a.t != t {
			return MuxFrame{}, fmt.Errorf("wire: mux segment type changed mid-stream (%v then %v)", a.t, t)
		}
		need := len(a.buf) + plen
		if need > MaxFrameSize {
			return MuxFrame{}, ErrFrameTooLarge
		}
		if cap(a.buf) < need {
			nb := GetBuf(need)[:len(a.buf)]
			copy(nb, a.buf)
			PutBuf(a.buf)
			a.buf = nb
		}
		if _, err := io.ReadFull(mr.r, a.buf[len(a.buf):need]); err != nil {
			PutBuf(a.buf)
			delete(mr.asm, stream)
			return MuxFrame{}, err
		}
		a.buf = a.buf[:need]

		if more {
			if _, held := mr.asm[stream]; !held {
				if len(mr.asm) >= maxMuxAssembling {
					PutBuf(a.buf)
					return MuxFrame{}, fmt.Errorf("wire: more than %d streams assembling", maxMuxAssembling)
				}
				mr.asm[stream] = a
			}
			continue
		}
		delete(mr.asm, stream)
		msg, err := decodeFrame(a.t, a.buf)
		if err != nil {
			PutBuf(a.buf)
			return MuxFrame{}, err
		}
		return MuxFrame{Stream: stream, Class: a.class, Msg: msg, Buf: a.buf}, nil
	}
}

// Close releases the pooled buffers of any half-assembled streams.
func (mr *MuxReader) Close() {
	for s, a := range mr.asm {
		PutBuf(a.buf)
		delete(mr.asm, s)
	}
}
