package wire

import (
	"errors"
	"math"
)

// Encoding limits.
const (
	// MaxStringLen bounds any single length-prefixed string or byte
	// field. Bulk stripe data travels as Bytes fields and is bounded by
	// the frame size instead.
	MaxStringLen = 1 << 16
)

var (
	errStringTooLong = errors.New("wire: string field exceeds MaxStringLen")
	errNegativeLen   = errors.New("wire: negative length prefix")
)

// Encoder serialises primitive values into a growing buffer. Errors are
// sticky: after the first failure every subsequent Put is a no-op, and the
// error is reported once at the end (mirroring the bufio.Writer pattern, so
// message Encode methods stay free of error plumbing).
type Encoder struct {
	buf []byte
	err error
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Err returns the first error encountered while encoding.
func (e *Encoder) Err() error { return e.err }

// PutU8 appends a single byte.
func (e *Encoder) PutU8(v uint8) {
	if e.err != nil {
		return
	}
	e.buf = append(e.buf, v)
}

// PutBool appends a boolean as one byte (0 or 1).
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutU8(1)
	} else {
		e.PutU8(0)
	}
}

// PutU16 appends a little-endian uint16.
func (e *Encoder) PutU16(v uint16) {
	if e.err != nil {
		return
	}
	e.buf = append(e.buf, byte(v), byte(v>>8))
}

// PutU32 appends a little-endian uint32.
func (e *Encoder) PutU32(v uint32) {
	if e.err != nil {
		return
	}
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// PutU64 appends a little-endian uint64.
func (e *Encoder) PutU64(v uint64) {
	if e.err != nil {
		return
	}
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// PutI64 appends a little-endian int64.
func (e *Encoder) PutI64(v int64) { e.PutU64(uint64(v)) }

// PutF64 appends an IEEE-754 float64.
func (e *Encoder) PutF64(v float64) { e.PutU64(math.Float64bits(v)) }

// PutString appends a length-prefixed UTF-8 string.
func (e *Encoder) PutString(s string) {
	if e.err != nil {
		return
	}
	if len(s) > MaxStringLen {
		e.err = errStringTooLong
		return
	}
	e.PutU32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// PutBytes appends a length-prefixed byte slice. Bulk data path: bounded
// only by the frame size.
func (e *Encoder) PutBytes(b []byte) {
	if e.err != nil {
		return
	}
	e.PutU32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// PutU64s appends a length-prefixed slice of uint64.
func (e *Encoder) PutU64s(vs []uint64) {
	e.PutU32(uint32(len(vs)))
	for _, v := range vs {
		e.PutU64(v)
	}
}

// PutStrings appends a length-prefixed slice of strings.
func (e *Encoder) PutStrings(ss []string) {
	e.PutU32(uint32(len(ss)))
	for _, s := range ss {
		e.PutString(s)
	}
}

// Decoder reads primitive values out of a buffer. Like Encoder, errors are
// sticky; once the buffer underflows every Get returns a zero value.
type Decoder struct {
	buf []byte
	err error
	off int
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered while decoding.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left unread.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.buf)-d.off < n {
		d.err = ErrShortPayload
		return false
	}
	return true
}

// U8 reads a single byte.
func (d *Decoder) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := uint16(d.buf[d.off]) | uint16(d.buf[d.off+1])<<8
	d.off += 2
	return v
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	b := d.buf[d.off:]
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	b := d.buf[d.off:]
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	d.off += 8
	return v
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.U32())
	if d.err != nil {
		return ""
	}
	if n > MaxStringLen {
		d.err = errStringTooLong
		return ""
	}
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Bytes reads a length-prefixed byte slice. The returned slice aliases the
// decoder's buffer; callers that retain it beyond the message lifetime must
// copy.
func (d *Decoder) Bytes() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	if n < 0 {
		d.err = errNegativeLen
		return nil
	}
	if !d.need(n) {
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}

// U64s reads a length-prefixed slice of uint64.
func (d *Decoder) U64s() []uint64 {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	// Each element takes 8 bytes; reject lengths the payload cannot hold
	// before allocating.
	if n*8 > d.Remaining() {
		d.err = ErrShortPayload
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = d.U64()
	}
	return vs
}

// Strings reads a length-prefixed slice of strings.
func (d *Decoder) Strings() []string {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	// Each element needs at least a 4-byte length prefix.
	if n*4 > d.Remaining() {
		d.err = ErrShortPayload
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = d.String()
	}
	return ss
}
