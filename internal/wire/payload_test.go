package wire

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// tempPayloadFile writes data to a file and returns it opened for read.
func tempPayloadFile(t *testing.T, data []byte) *os.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "payload.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestPayloadFrameByteIdentity pins the by-reference contract: a ReadResp
// carrying a file-backed Payload must put the exact same bytes on the wire
// as the same response carrying the data inline — for both the classic
// ordered framing and the mux framing. Receivers never learn which path
// the sender took.
func TestPayloadFrameByteIdentity(t *testing.T) {
	sizes := []int{1, 100, vectoredMin - 1, vectoredMin, vectoredMin + 1, 200_000}
	for _, n := range sizes {
		data := make([]byte, n)
		rng := rand.New(rand.NewSource(int64(n)))
		rng.Read(data)
		f := tempPayloadFile(t, data)

		inline := &ReadResp{Data: data, EOF: true}
		byref := &ReadResp{
			Payload: NewFilePayload([]FileSection{{F: f, Off: 0, N: int64(n)}}, nil),
			EOF:     true,
		}

		// Ordered framing.
		var want, got bytes.Buffer
		if err := WriteMessageOpts(&want, inline, WriteOptions{Plain: true}); err != nil {
			t.Fatal(err)
		}
		var st FrameStats
		if err := WriteMessageOpts(&got, byref, WriteOptions{Stats: &st}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("n=%d: ordered by-ref frame differs from inline (%d vs %d bytes)",
				n, got.Len(), want.Len())
		}
		// A buffer is not a TCP conn, so the bytes staged through the
		// copy fallback; they must still be accounted.
		if st.CopiedBytes.Load() != int64(n) {
			t.Errorf("n=%d: copied_bytes = %d, want %d", n, st.CopiedBytes.Load(), n)
		}

		// Decode round trip.
		m, err := ReadMessage(bytes.NewReader(got.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		rr, ok := m.(*ReadResp)
		if !ok || !bytes.Equal(rr.Data, data) || !rr.EOF {
			t.Fatalf("n=%d: by-ref frame decoded wrong", n)
		}
		byref.Payload.Close()
	}
}

// TestPayloadMuxByteIdentity checks the mux framing: a payload-bearing
// ReadResp segments into the same sub-frame stream as the inline encoding.
func TestPayloadMuxByteIdentity(t *testing.T) {
	for _, n := range []int{1, MinMuxSegment - muxOverhead, MinMuxSegment, 3*MinMuxSegment + 17, 300_000} {
		data := make([]byte, n)
		rng := rand.New(rand.NewSource(int64(n)))
		rng.Read(data)
		f := tempPayloadFile(t, data)

		var want, got bytes.Buffer
		mwInline := NewMuxWriter(&want, MinMuxSegment)
		mwInline.Plain = true
		if err := mwInline.Enqueue(&ReadResp{Data: data, EOF: true}, 7, nil); err != nil {
			t.Fatal(err)
		}
		mwInline.Close()

		var st FrameStats
		mwRef := NewMuxWriter(&got, MinMuxSegment)
		mwRef.Stats = &st
		p := NewFilePayload([]FileSection{{F: f, Off: 0, N: int64(n)}}, nil)
		var wg sync.WaitGroup
		wg.Add(1)
		if err := mwRef.Enqueue(&ReadResp{Payload: p, EOF: true}, 7, func(error) { wg.Done() }); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		mwRef.Close()
		p.Close()

		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("n=%d: mux by-ref stream differs from inline (%d vs %d bytes)",
				n, got.Len(), want.Len())
		}

		// And it reads back as one message.
		mr := NewMuxReader(io.NopCloser(bytes.NewReader(got.Bytes())))
		fr, err := mr.Read()
		if err != nil {
			t.Fatal(err)
		}
		rr, ok := fr.Msg.(*ReadResp)
		if !ok || !bytes.Equal(rr.Data, data) {
			t.Fatalf("n=%d: mux by-ref decode wrong", n)
		}
		PutBuf(fr.Buf)
		mr.Close()
	}
}

// TestFilePayloadZeroFill: sections with a nil file read as zeros, and a
// payload whose backing file shrank after ReadRange keeps its announced
// length by zero-filling the missing tail (the frame header has already
// promised those bytes).
func TestFilePayloadZeroFill(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 1000)
	f := tempPayloadFile(t, data)

	p := NewFilePayload([]FileSection{
		{F: f, Off: 0, N: 500},
		{N: 300}, // hole
		{F: f, Off: 500, N: 500},
	}, nil)
	if p.Len() != 1300 {
		t.Fatalf("len = %d", p.Len())
	}
	var buf bytes.Buffer
	if err := p.WriteRange(&buf, 0, 1300, nil); err != nil {
		t.Fatal(err)
	}
	want := append(append(append([]byte{}, data[:500]...), make([]byte, 300)...), data[500:]...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("hole section did not read as zeros")
	}
	p.Close()

	// Shrink the backing file under a live payload.
	p2 := NewFilePayload([]FileSection{{F: f, Off: 0, N: 1000}}, nil)
	if err := os.Truncate(f.Name(), 400); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := p2.WriteRange(&buf, 0, 1000, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if len(out) != 1000 {
		t.Fatalf("shrunk payload wrote %d bytes, want 1000", len(out))
	}
	if !bytes.Equal(out[:400], data[:400]) {
		t.Fatal("surviving prefix corrupted")
	}
	if !bytes.Equal(out[400:], make([]byte, 600)) {
		t.Fatal("missing tail not zero-filled")
	}
	p2.Close()
}

// TestFilePayloadSubRange exercises WriteRange offsets that straddle
// section boundaries, as mux segmentation produces.
func TestFilePayloadSubRange(t *testing.T) {
	data := make([]byte, 2048)
	rand.New(rand.NewSource(7)).Read(data)
	f := tempPayloadFile(t, data)
	full := append(append(append([]byte{}, data[:1000]...), make([]byte, 500)...), data[1000:]...)

	p := NewFilePayload([]FileSection{
		{F: f, Off: 0, N: 1000},
		{N: 500},
		{F: f, Off: 1000, N: 1048},
	}, nil)
	defer p.Close()
	for _, r := range [][2]int64{{0, 1}, {999, 2}, {900, 700}, {1400, 200}, {0, 2548}, {2547, 1}} {
		var buf bytes.Buffer
		if err := p.WriteRange(&buf, r[0], r[1], nil); err != nil {
			t.Fatalf("range %v: %v", r, err)
		}
		if !bytes.Equal(buf.Bytes(), full[r[0]:r[0]+r[1]]) {
			t.Fatalf("range %v: content mismatch", r)
		}
	}
}

// TestWritevStats: memory-backed bulk data at or above vectoredMin goes
// out through net.Buffers and counts a vectored write; smaller frames and
// Plain mode stay on the contiguous path.
func TestWritevStats(t *testing.T) {
	big := &ReadResp{Data: make([]byte, vectoredMin)}
	small := &ReadResp{Data: make([]byte, 16)}

	var st FrameStats
	var buf bytes.Buffer
	if err := WriteMessageOpts(&buf, big, WriteOptions{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.WritevCalls.Load() != 1 {
		t.Errorf("writev_calls = %d after big frame, want 1", st.WritevCalls.Load())
	}
	if err := WriteMessageOpts(&buf, small, WriteOptions{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.WritevCalls.Load() != 1 {
		t.Errorf("writev_calls = %d after small frame, want still 1", st.WritevCalls.Load())
	}
	if st.CopiedBytes.Load() != 16 {
		t.Errorf("copied_bytes = %d, want 16 (small inline frame only)", st.CopiedBytes.Load())
	}

	var plain bytes.Buffer
	stBefore := st.WritevCalls.Load()
	if err := WriteMessageOpts(&plain, big, WriteOptions{Stats: &st, Plain: true}); err != nil {
		t.Fatal(err)
	}
	if st.WritevCalls.Load() != stBefore {
		t.Error("Plain mode still used the vectored path")
	}
}

// TestPutPayloadMaterialize: Encoder.PutPayload embeds payload bytes
// exactly like PutBytes would.
func TestPutPayloadMaterialize(t *testing.T) {
	data := []byte("some payload bytes for the slow path")
	f := tempPayloadFile(t, data)
	p := NewFilePayload([]FileSection{{F: f, Off: 0, N: int64(len(data))}}, nil)
	defer p.Close()

	var a, b Encoder
	a.PutBytes(data)
	b.PutPayload(p)
	if b.err != nil {
		t.Fatal(b.err)
	}
	if !bytes.Equal(a.buf, b.buf) {
		t.Fatalf("PutPayload bytes differ from PutBytes:\n%x\n%x", a.buf, b.buf)
	}
}
