package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// roundTrip writes m through the framing layer and reads it back.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("WriteMessage(%v): %v", m.Type(), err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("ReadMessage(%v): %v", m.Type(), err)
	}
	return got
}

func TestAllMessagesRoundTrip(t *testing.T) {
	layout := Layout{StripeSize: 4096, Servers: []uint32{2, 0, 1}}
	msgs := []Message{
		&ErrorMsg{Code: StatusNotFound, Op: "open", Detail: "no such file"},
		&Ping{Seq: 7},
		&Pong{Seq: 7},
		&CreateReq{Name: "a/b", StripeSize: 1 << 16, Width: 4},
		&CreateReq{Name: "placed", StripeSize: 1 << 16, Placement: []uint32{2, 0}},
		&CreateResp{Handle: 9, Layout: layout},
		&OpenReq{Name: "a/b"},
		&OpenResp{Handle: 9, Size: 1 << 30, Layout: layout},
		&StatReq{Name: "a/b"},
		&StatResp{Handle: 9, Size: 12345, ModUnixN: -99, Layout: layout},
		&RemoveReq{Name: "x"},
		&RemoveResp{Handle: 3},
		&ListReq{Prefix: "data/"},
		&ListResp{Names: []string{"data/a", "data/b"}},
		&SetSizeReq{Handle: 4, Size: 77},
		&SetSizeResp{Size: 77},
		&ReadReq{Handle: 1, Offset: 8192, Length: 4096},
		&ReadReq{Handle: 1, Offset: 8192, Length: 4096, Tenant: "app-a"},
		&ReadResp{Data: []byte{9, 9, 9}, EOF: true},
		&WriteReq{Handle: 1, Offset: 0, Data: []byte("payload")},
		&WriteReq{Handle: 1, Offset: 0, Data: []byte("payload"), Tenant: "app-a"},
		&WriteResp{N: 7},
		&TruncReq{Handle: 5, Size: 10, Remove: true},
		&TruncReq{Handle: 5, Size: 10, Remove: true, Tenant: "app-a"},
		&TruncResp{},
		&ActiveReadReq{RequestID: 11, Handle: 2, Offset: 64, Length: 1 << 20,
			Op: "sum8", Params: []byte{1}, ResumeState: []byte{2, 3}, TraceID: 0xCAFE0001},
		&ActiveReadReq{RequestID: 11, Handle: 2, Offset: 64, Length: 1 << 20,
			Op: "sum8", Params: []byte{1}, ResumeState: []byte{2, 3}, TraceID: 0xCAFE0001,
			Tenant: "app-a"},
		&ActiveReadResp{RequestID: 11, Disposition: ActiveInterrupted,
			Result: []byte{4}, State: []byte{5, 6}, Processed: 512, TraceID: 0xCAFE0001},
		&ProbeReq{},
		&ProbeResp{QueueLen: 3, ActiveQueueLen: 2, BusyCores: 1.5, TotalCores: 2,
			MemUsed: 100, MemTotal: 1000, BytesQueued: 4096},
		&CancelReq{RequestID: 11, TraceID: 0xCAFE0001},
		&CancelResp{Found: true},
		&TransformReq{RequestID: 12, SrcHandle: 2, Offset: 64, Length: 1 << 20,
			Op: "gaussian2d", Params: []byte{7}, DstHandle: 3, DstOffset: 64, TraceID: 0xCAFE0002},
		&TransformReq{RequestID: 12, SrcHandle: 2, Offset: 64, Length: 1 << 20,
			Op: "gaussian2d", Params: []byte{7}, DstHandle: 3, DstOffset: 64, TraceID: 0xCAFE0002,
			Tenant: "app-a"},
		&TransformResp{RequestID: 12, Written: 1 << 20},
		&LocalSizeReq{Handle: 9},
		&LocalSizeResp{Size: 1 << 30},
		&StatsReq{},
		&StatsResp{Node: "data-0", Role: "data", Mode: "dosas",
			Stats: []byte(`{"counters":{"active.arrivals":3}}`)},
		&TraceFetchReq{ReqID: 7, TraceID: 0xCAFE0001},
		&TraceFetchResp{Node: "data-0", Events: []byte(`[]`), Dropped: 42},
		&HealthReq{},
		&HealthResp{Node: "data-0", Role: "data", Ready: false,
			Checks: []byte(`[{"name":"queue","ok":false}]`), UptimeNano: 5e9},
		&SeriesFetchReq{WindowNano: 2e9, Names: []string{"queue.depth", "bounce.rate"}},
		&SeriesFetchResp{Node: "data-0", TickNano: 1e8,
			Series: []byte(`[{"name":"queue.depth","points":[{"t":1,"v":2}]}]`)},
		&DecisionLogReq{Limit: 32, TraceID: 0xCAFE0003},
		&DecisionLogResp{Node: "data-0", Dropped: 6,
			Records: []byte(`[{"seq":1,"solver":"maxgain","trigger":"admit"}]`)},
		&HelloReq{MaxVersion: MuxVersion, MaxSegment: DefaultMuxSegment},
		&HelloResp{Version: MuxVersion, MaxSegment: 64 << 10},
		&EventFetchReq{SinceSeq: 17, Limit: 100, MinLevel: 2},
		&EventFetchResp{Node: "data-0", NextSeq: 42, Dropped: 3,
			Events: []byte(`[{"seq":1,"level":"warn","sub":"slo","msg":"alert pending"}]`)},
		&AlertFetchReq{},
		&AlertFetchResp{Node: "data-0",
			Alerts: []byte(`[{"rule":"bounce-budget-burn","state":"firing"}]`)},
		&TenantStatsReq{},
		&TenantStatsResp{Node: "data-0", Evicted: 3,
			Usage: []byte(`[{"tenant":"app-a","bytes_read":4096}]`)},
		&RangeQueryReq{Name: "queue.depth", FromNano: -5e9, ToNano: 9e18, StepNano: 1e10},
		&RangeQueryResp{Node: "data-0", EarliestNano: 7e9,
			Series: []byte(`[{"name":"queue.depth","points":[{"t":1,"v":2,"m":3}]}]`)},
	}
	seen := make(map[MsgType]bool)
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(normalise(got), normalise(m)) {
			t.Errorf("%v: round trip mismatch:\n got %#v\nwant %#v", m.Type(), got, m)
		}
		seen[m.Type()] = true
	}
	// Every registered message type must be covered above, so new
	// messages cannot ship without a round-trip test.
	for tt := MsgType(1); tt < msgSentinel; tt++ {
		if !seen[tt] {
			t.Errorf("message type %v has no round-trip coverage", tt)
		}
	}
}

// Frames written by peers that predate a trailing optional field must
// still decode, with that field defaulting to zero. Each such field is
// always the final 8 encoded bytes of its message, so an old-format frame
// is the new-format frame truncated by 8 with its length prefix reduced
// to match.
func TestOldFormatFramesDecode(t *testing.T) {
	cases := []struct {
		m     Message
		field string // the trailing optional field old peers omit
	}{
		{&ActiveReadReq{RequestID: 11, Handle: 2, Offset: 64, Length: 1 << 20,
			Op: "sum8", Params: []byte{1}, ResumeState: []byte{2, 3}, TraceID: 0xCAFE}, "TraceID"},
		{&ActiveReadResp{RequestID: 11, Disposition: ActiveDone,
			Result: []byte{4}, Processed: 512, TraceID: 0xCAFE}, "TraceID"},
		{&CancelReq{RequestID: 11, TraceID: 0xCAFE}, "TraceID"},
		{&TransformReq{RequestID: 12, SrcHandle: 2, Offset: 64, Length: 1 << 20,
			Op: "gaussian2d", Params: []byte{7}, DstHandle: 3, DstOffset: 64, TraceID: 0xCAFE}, "TraceID"},
		{&TraceFetchResp{Node: "data-0", Events: []byte(`[]`), Dropped: 17}, "Dropped"},
		{&HealthResp{Node: "data-0", Role: "data", Ready: true,
			Checks: []byte(`[]`), UptimeNano: 123456789}, "UptimeNano"},
		{&SeriesFetchResp{Node: "data-0", Series: []byte(`[]`), TickNano: 1e8, Dropped: 21}, "Dropped"},
	}
	for _, tc := range cases {
		m := tc.m
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("WriteMessage(%v): %v", m.Type(), err)
		}
		raw := buf.Bytes()
		old := append([]byte(nil), raw[:len(raw)-8]...)
		binary.LittleEndian.PutUint32(old[0:4], uint32(len(old)-4))
		got, err := ReadMessage(bytes.NewReader(old))
		if err != nil {
			t.Fatalf("%v: old-format frame rejected: %v", m.Type(), err)
		}
		// Old peers never sent the trailing field, so decode yields zero.
		f := reflect.ValueOf(m).Elem().FieldByName(tc.field)
		f.Set(reflect.Zero(f.Type()))
		if !reflect.DeepEqual(normalise(got), normalise(m)) {
			t.Errorf("%v: old-format decode mismatch:\n got %#v\nwant %#v", m.Type(), got, m)
		}
	}
}

// normalise maps nil and empty slices to a canonical form so DeepEqual
// compares semantic content (the codec does not distinguish them).
func normalise(m Message) Message {
	v := reflect.ValueOf(m).Elem()
	normaliseValue(v)
	return m
}

func normaliseValue(v reflect.Value) {
	switch v.Kind() {
	case reflect.Slice:
		if v.Len() == 0 && !v.IsNil() {
			v.Set(reflect.Zero(v.Type()))
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			normaliseValue(v.Field(i))
		}
	}
}

func TestReadMessageRejectsHugeFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0})
	if _, err := ReadMessage(&buf); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadMessageRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	// length=2 (type only), type=9999
	buf.Write([]byte{2, 0, 0, 0, 0x0F, 0x27})
	_, err := ReadMessage(&buf)
	if err == nil {
		t.Fatal("expected error for unknown message type")
	}
}

func TestReadMessageTruncatedPayload(t *testing.T) {
	var full bytes.Buffer
	if err := WriteMessage(&full, &OpenReq{Name: "abcdef"}); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	if _, err := ReadMessage(bytes.NewReader(raw[:len(raw)-2])); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestReadMessageTrailingBytes(t *testing.T) {
	// Hand-build a Ping frame with 2 extra payload bytes.
	var e Encoder
	e.buf = make([]byte, 6)
	e.PutU64(1)
	e.PutU16(0xABCD) // trailing garbage
	raw := e.Bytes()
	raw[0] = byte(len(raw) - 4)
	raw[4] = byte(MsgPing)
	if _, err := ReadMessage(bytes.NewReader(raw)); err != ErrTrailingBytes {
		t.Fatalf("err = %v, want ErrTrailingBytes", err)
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgOpenReq.String() != "open.req" {
		t.Errorf("MsgOpenReq.String() = %q", MsgOpenReq.String())
	}
	if MsgType(9999).String() == "" {
		t.Error("unknown type should still render")
	}
	if MsgInvalid.Valid() || !MsgPing.Valid() || msgSentinel.Valid() {
		t.Error("Valid() boundaries wrong")
	}
}

// TestDecisionLogCodecQuick property-checks the decision-log codecs over
// arbitrary field values, including Records payloads that are not valid
// JSON — the codec is payload-agnostic by design.
func TestDecisionLogCodecQuick(t *testing.T) {
	f := func(limit, trace, dropped uint64, node string, records []byte) bool {
		req := roundTrip(t, &DecisionLogReq{Limit: limit, TraceID: trace}).(*DecisionLogReq)
		if req.Limit != limit || req.TraceID != trace {
			return false
		}
		in := &DecisionLogResp{Node: node, Records: records, Dropped: dropped}
		resp := roundTrip(t, in).(*DecisionLogResp)
		return resp.Node == node && resp.Dropped == dropped &&
			bytes.Equal(resp.Records, records)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// SeriesFetchResp has gained two trailing optional fields over time
// (TickNano, then Dropped); a frame from a peer predating both — the
// new-format frame truncated by 16 — must still decode.
func TestSeriesFetchRespTwoGenerationsOld(t *testing.T) {
	m := &SeriesFetchResp{Node: "data-0", Series: []byte(`[]`), TickNano: 1e8, Dropped: 9}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	old := append([]byte(nil), raw[:len(raw)-16]...)
	binary.LittleEndian.PutUint32(old[0:4], uint32(len(old)-4))
	got, err := ReadMessage(bytes.NewReader(old))
	if err != nil {
		t.Fatalf("two-generations-old frame rejected: %v", err)
	}
	resp := got.(*SeriesFetchResp)
	if resp.Node != "data-0" || resp.TickNano != 0 || resp.Dropped != 0 {
		t.Fatalf("decode = %+v, want zero TickNano/Dropped", resp)
	}
}

// tenantCases enumerates every request envelope carrying the appended
// tenant field, with the field set.
func tenantCases() []Message {
	return []Message{
		&ReadReq{Handle: 1, Offset: 8192, Length: 4096, Tenant: "app-a"},
		&WriteReq{Handle: 1, Offset: 64, Data: []byte("payload"), Tenant: "app-a"},
		&TruncReq{Handle: 5, Size: 10, Remove: true, Tenant: "app-a"},
		&ActiveReadReq{RequestID: 11, Handle: 2, Offset: 64, Length: 1 << 20,
			Op: "sum8", Params: []byte{1}, TraceID: 0xCAFE, Tenant: "app-a"},
		&TransformReq{RequestID: 12, SrcHandle: 2, Offset: 64, Length: 1 << 20,
			Op: "gaussian2d", Params: []byte{7}, DstHandle: 3, DstOffset: 64,
			TraceID: 0xCAFE, Tenant: "app-a"},
	}
}

// clearTenant zeroes a message's Tenant field and returns it.
func clearTenant(m Message) Message {
	reflect.ValueOf(m).Elem().FieldByName("Tenant").SetString("")
	return m
}

// Tenant-aware servers must decode pre-tenant clients' frames (tenant
// defaults to ""), and tenant-aware clients speaking for the default
// tenant must emit frames pre-tenant servers accept — which the codec
// guarantees by emitting the old format byte-for-byte when Tenant is
// empty, since a pre-tenant decoder rejects any trailing bytes.
func TestTenantFieldOldPeerInterop(t *testing.T) {
	for _, m := range tenantCases() {
		tenant := reflect.ValueOf(m).Elem().FieldByName("Tenant").String()
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("WriteMessage(%v): %v", m.Type(), err)
		}
		raw := buf.Bytes()
		// Direction 1: a pre-tenant client's frame is the new frame minus
		// the appended field (u32 length prefix + bytes); it must decode
		// with Tenant left empty.
		cut := 4 + len(tenant)
		old := append([]byte(nil), raw[:len(raw)-cut]...)
		binary.LittleEndian.PutUint32(old[0:4], uint32(len(old)-4))
		got, err := ReadMessage(bytes.NewReader(old))
		if err != nil {
			t.Fatalf("%v: pre-tenant frame rejected: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(normalise(got), normalise(clearTenant(m))) {
			t.Errorf("%v: pre-tenant decode mismatch:\n got %#v\nwant %#v", m.Type(), got, m)
		}
		// Direction 2: the same message from a default-tenant client
		// encodes byte-identically to the pre-tenant frame, so a
		// pre-tenant server (which rejects trailing bytes) accepts it.
		var defBuf bytes.Buffer
		if err := WriteMessage(&defBuf, m); err != nil { // m's Tenant now ""
			t.Fatal(err)
		}
		if !bytes.Equal(defBuf.Bytes(), old) {
			t.Errorf("%v: default-tenant frame differs from pre-tenant format (%d vs %d bytes)",
				m.Type(), defBuf.Len(), len(old))
		}
	}
}

// The same interop property must hold through the multiplexed framing:
// a tenant-stamped message reassembles with its tenant, and a
// default-tenant message reassembles to a payload byte-identical to the
// pre-tenant encoding.
func TestTenantFieldMuxFraming(t *testing.T) {
	pr, pw := io.Pipe()
	mw := NewMuxWriter(pw, MinMuxSegment)
	mr := NewMuxReader(pr)
	defer mr.Close()

	msgs := tenantCases()
	var wg sync.WaitGroup
	for i, m := range msgs {
		wg.Add(1)
		go func(stream uint32, m Message) {
			defer wg.Done()
			if err := mw.Enqueue(m, stream, nil); err != nil {
				t.Errorf("enqueue %d: %v", stream, err)
			}
		}(uint32(i+1), m)
	}
	got := make(map[uint32]Message)
	for range msgs {
		f, err := mr.Read()
		if err != nil {
			t.Fatalf("mux read: %v", err)
		}
		Own(f.Msg)
		PutBuf(f.Buf)
		got[f.Stream] = f.Msg
	}
	wg.Wait()
	mw.Close()
	pw.Close()
	for i, m := range msgs {
		g := got[uint32(i+1)]
		if g == nil {
			t.Fatalf("stream %d never arrived", i+1)
		}
		if !reflect.DeepEqual(normalise(g), normalise(m)) {
			t.Errorf("%v: mux round trip mismatch:\n got %#v\nwant %#v", m.Type(), g, m)
		}
		// Empty tenant encodes the pre-tenant payload through this
		// framing too.
		var withTenant, without Encoder
		m.Encode(&withTenant)
		tenant := reflect.ValueOf(m).Elem().FieldByName("Tenant").String()
		clearTenant(m).Encode(&without)
		if len(withTenant.Bytes())-len(without.Bytes()) != 4+len(tenant) {
			t.Errorf("%v: empty tenant did not shrink payload to the pre-tenant format", m.Type())
		}
	}
}

// TestTenantStatsCodecQuick property-checks the tenant-stats codecs over
// arbitrary field values, including Usage payloads that are not valid
// JSON — like the other fetch pairs, the codec is payload-agnostic.
func TestTenantStatsCodecQuick(t *testing.T) {
	f := func(evicted uint64, node string, usage []byte) bool {
		if _, ok := roundTrip(t, &TenantStatsReq{}).(*TenantStatsReq); !ok {
			return false
		}
		resp := roundTrip(t, &TenantStatsResp{Node: node, Evicted: evicted, Usage: usage}).(*TenantStatsResp)
		return resp.Node == node && resp.Evicted == evicted && bytes.Equal(resp.Usage, usage)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEventAlertCodecQuick property-checks the event/alert codecs over
// arbitrary field values, including payloads that are not valid JSON —
// like the decision log, the codec is payload-agnostic by design.
func TestEventAlertCodecQuick(t *testing.T) {
	f := func(since, limit, next, dropped uint64, minLevel uint8, node string, payload []byte) bool {
		req := roundTrip(t, &EventFetchReq{SinceSeq: since, Limit: limit, MinLevel: minLevel}).(*EventFetchReq)
		if req.SinceSeq != since || req.Limit != limit || req.MinLevel != minLevel {
			return false
		}
		eresp := roundTrip(t, &EventFetchResp{Node: node, Events: payload, NextSeq: next, Dropped: dropped}).(*EventFetchResp)
		if eresp.Node != node || eresp.NextSeq != next || eresp.Dropped != dropped ||
			!bytes.Equal(eresp.Events, payload) {
			return false
		}
		aresp := roundTrip(t, &AlertFetchResp{Node: node, Alerts: payload}).(*AlertFetchResp)
		return aresp.Node == node && bytes.Equal(aresp.Alerts, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRangeQueryCodecQuick property-checks the range-query codec over
// arbitrary field values, including negative windows and Series
// payloads that are not valid JSON — like the other fetch pairs, the
// codec is payload-agnostic.
func TestRangeQueryCodecQuick(t *testing.T) {
	f := func(name, node string, from, to, step, earliest int64, series []byte) bool {
		req := roundTrip(t, &RangeQueryReq{Name: name, FromNano: from, ToNano: to, StepNano: step}).(*RangeQueryReq)
		if req.Name != name || req.FromNano != from || req.ToNano != to || req.StepNano != step {
			return false
		}
		resp := roundTrip(t, &RangeQueryResp{Node: node, Series: series, EarliestNano: earliest}).(*RangeQueryResp)
		return resp.Node == node && resp.EarliestNano == earliest && bytes.Equal(resp.Series, series)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// RangeQueryResp carries EarliestNano as a trailing optional field; a
// frame from a peer predating it — the new-format frame truncated by
// 8 — must still decode with the field zero.
func TestRangeQueryRespOldPeerInterop(t *testing.T) {
	m := &RangeQueryResp{Node: "data-0", Series: []byte(`[]`), EarliestNano: 7e9}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	old := append([]byte(nil), raw[:len(raw)-8]...)
	binary.LittleEndian.PutUint32(old[0:4], uint32(len(old)-4))
	got, err := ReadMessage(bytes.NewReader(old))
	if err != nil {
		t.Fatalf("old-generation frame rejected: %v", err)
	}
	resp := got.(*RangeQueryResp)
	if resp.Node != "data-0" || !bytes.Equal(resp.Series, []byte(`[]`)) || resp.EarliestNano != 0 {
		t.Fatalf("decode = %+v, want zero EarliestNano", resp)
	}
}
