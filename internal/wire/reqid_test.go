package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// ReadReq grew a second trailing optional field (ReqID) behind Tenant.
// The codec must keep all three vintages interoperable: bare frames,
// tenant-stamped frames, and id-stamped frames.
func TestReadReqReqIDRoundTrip(t *testing.T) {
	cases := []*ReadReq{
		{Handle: 1, Offset: 64, Length: 4096},
		{Handle: 1, Offset: 64, Length: 4096, Tenant: "app-a"},
		{Handle: 1, Offset: 64, Length: 4096, ReqID: 1<<63 | 7},
		{Handle: 1, Offset: 64, Length: 4096, Tenant: "app-a", ReqID: 1<<63 | 7},
	}
	for _, m := range cases {
		got := roundTrip(t, m).(*ReadReq)
		if got.Handle != m.Handle || got.Offset != m.Offset || got.Length != m.Length ||
			got.Tenant != m.Tenant || got.ReqID != m.ReqID {
			t.Errorf("round trip mismatch: got %+v want %+v", got, m)
		}
	}
}

// A ReqID-stamped frame must still be positional: when ReqID is set with
// an empty tenant, the tenant field is encoded explicitly (as "") so the
// decoder cannot misread the id as a tenant string.
func TestReadReqReqIDForcesTenantField(t *testing.T) {
	m := &ReadReq{Handle: 9, Offset: 0, Length: 512, ReqID: 1<<63 | 42}
	got := roundTrip(t, m).(*ReadReq)
	if got.Tenant != "" || got.ReqID != m.ReqID {
		t.Fatalf("got tenant=%q reqid=%d, want empty tenant and id %d", got.Tenant, got.ReqID, m.ReqID)
	}
}

// Frames without the trailing fields — what a pre-ReqID peer emits —
// must decode with both left zero, and a bare new-client frame must be
// byte-identical to the old format.
func TestReadReqPreReqIDInterop(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &ReadReq{Handle: 3, Offset: 128, Length: 256, Tenant: "x", ReqID: 5}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Strip the trailing u64 ReqID: a tenant-era frame.
	old := append([]byte(nil), raw[:len(raw)-8]...)
	binary.LittleEndian.PutUint32(old[0:4], uint32(len(old)-4))
	got, err := ReadMessage(bytes.NewReader(old))
	if err != nil {
		t.Fatalf("tenant-era frame rejected: %v", err)
	}
	rr := got.(*ReadReq)
	if rr.Tenant != "x" || rr.ReqID != 0 {
		t.Fatalf("tenant-era decode: tenant=%q reqid=%d, want x/0", rr.Tenant, rr.ReqID)
	}

	// A bare request still encodes the original three-field format.
	var bare, withID bytes.Buffer
	if err := WriteMessage(&bare, &ReadReq{Handle: 3, Offset: 128, Length: 256}); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&withID, &ReadReq{Handle: 3, Offset: 128, Length: 256, ReqID: 1}); err != nil {
		t.Fatal(err)
	}
	if bare.Len() != withID.Len()-8-4 { // id adds u64 + the forced empty tenant's u32 length
		t.Fatalf("bare frame %dB, id frame %dB: unexpected layout", bare.Len(), withID.Len())
	}
}

// The namespace lookups grew trailing tenant fields for metadata QoS;
// same interop contract as the data-path messages.
func TestNamespaceTenantRoundTrip(t *testing.T) {
	cases := []Message{
		&OpenReq{Name: "a/b"},
		&OpenReq{Name: "a/b", Tenant: "app-a"},
		&StatReq{Name: "a/b"},
		&StatReq{Name: "a/b", Tenant: "app-a"},
		&ListReq{Prefix: "a/"},
		&ListReq{Prefix: "a/", Tenant: "app-a"},
	}
	for _, m := range cases {
		got := roundTrip(t, m)
		switch want := m.(type) {
		case *OpenReq:
			g := got.(*OpenReq)
			if g.Name != want.Name || g.Tenant != want.Tenant {
				t.Errorf("OpenReq mismatch: %+v vs %+v", g, want)
			}
		case *StatReq:
			g := got.(*StatReq)
			if g.Name != want.Name || g.Tenant != want.Tenant {
				t.Errorf("StatReq mismatch: %+v vs %+v", g, want)
			}
		case *ListReq:
			g := got.(*ListReq)
			if g.Prefix != want.Prefix || g.Tenant != want.Tenant {
				t.Errorf("ListReq mismatch: %+v vs %+v", g, want)
			}
		}
	}
	// Default-tenant lookups stay byte-identical to the old single-string
	// format so pre-QoS metadata servers keep accepting them.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &OpenReq{Name: "nm"}); err != nil {
		t.Fatal(err)
	}
	// frame = u32 len + u16 type + u32 strlen + bytes
	if want := 4 + 2 + 4 + 2; buf.Len() != want {
		t.Fatalf("bare OpenReq frame = %dB, want the pre-QoS %dB", buf.Len(), want)
	}
}
