//go:build linux

package wire

import (
	"net"
	"os"
	"syscall"
)

// rawSendfile moves up to n bytes from src at offset off into dst with
// sendfile(2), using the explicit-offset form (non-nil offset pointer) so
// the transfer never touches src's file-descriptor offset. That matters:
// the extent store shares cached descriptors across concurrent payloads,
// and the stdlib fast path (net.TCPConn.ReadFrom) works off the fd's
// current position, which would race. The write side runs under the
// runtime poller via RawConn.Write, so EAGAIN parks the goroutine until
// the socket is writable instead of spinning.
//
// Returns handled=false — with nothing consumed — when the kernel or the
// descriptor pair cannot sendfile (ENOSYS, EINVAL on the first byte); the
// caller falls back to the staging-copy path. A short written count with
// a nil error means src ended before n bytes (it shrank); the caller
// zero-fills the tail.
func rawSendfile(dst *net.TCPConn, src *os.File, off, n int64, st *FrameStats) (int64, bool, error) {
	if n <= 0 {
		return 0, true, nil
	}
	dc, err := dst.SyscallConn()
	if err != nil {
		return 0, false, nil
	}
	sc, err := src.SyscallConn()
	if err != nil {
		return 0, false, nil
	}
	var (
		written int64
		opErr   error
		handled = true
	)
	werr := dc.Write(func(dfd uintptr) bool {
		again := false
		cerr := sc.Control(func(sfd uintptr) {
			for written < n {
				pos := off + written
				// Cap each call at 1 GiB, mirroring the kernel's own
				// per-call transfer limit.
				chunk := int(min(n-written, 1<<30))
				m, e := syscall.Sendfile(int(dfd), int(sfd), &pos, chunk)
				if m > 0 {
					written += int64(m)
					st.addSendfile(int64(m))
				}
				switch e {
				case nil:
					if m == 0 {
						return // source EOF before n bytes
					}
				case syscall.EINTR:
					// retry
				case syscall.EAGAIN:
					again = true
					return
				case syscall.ENOSYS, syscall.EINVAL:
					if written == 0 {
						handled = false
					} else {
						// Mid-transfer refusal: bytes are already on the
						// wire, the frame cannot be re-sent another way.
						opErr = e
					}
					return
				default:
					opErr = e
					return
				}
			}
		})
		if cerr != nil && opErr == nil {
			opErr = cerr
		}
		// Returning false parks on the poller until dst is writable,
		// then re-invokes this func.
		return !again
	})
	if !handled {
		return 0, false, nil
	}
	if opErr == nil {
		opErr = werr
	}
	return written, true, opErr
}
