//go:build !linux

package wire

import (
	"net"
	"os"
)

// rawSendfile is unavailable off Linux; payloads take the staging-copy
// path instead (see FilePayload.writeFileRange).
func rawSendfile(*net.TCPConn, *os.File, int64, int64, *FrameStats) (int64, bool, error) {
	return 0, false, nil
}
