package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: feeding arbitrary bytes to the frame reader never panics —
// it returns an error or a valid message. This is the server's first line
// of defence against malformed or hostile peers.
func TestReadMessageNeverPanicsOnGarbage(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		raw := make([]byte, int(n)%4096)
		rng.Read(raw)
		_, err := ReadMessage(bytes.NewReader(raw))
		_ = err // either outcome is fine; surviving is the property
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a valid frame with its payload randomly corrupted never
// panics the decoder, and truncated payload bytes are reported as errors
// rather than producing trailing-garbage acceptance.
func TestReadMessageSurvivesCorruptedFrames(t *testing.T) {
	f := func(seed int64, flips uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		msgs := []Message{
			&ActiveReadReq{
				RequestID: rng.Uint64(),
				Handle:    rng.Uint64(),
				Offset:    rng.Uint64(),
				Length:    rng.Uint64(),
				Op:        "gaussian2d",
				Params:    []byte{1, 2, 3},
				TraceID:   rng.Uint64(),
			},
			&StatsResp{Node: "data-0", Role: "data", Mode: "dosas",
				Stats: []byte(`{"counters":{"x":1}}`)},
			&TraceFetchReq{ReqID: rng.Uint64(), TraceID: rng.Uint64()},
			&HealthResp{Node: "data-0", Role: "data", Ready: true,
				Checks: []byte(`[{"name":"queue","ok":true}]`), UptimeNano: rng.Int63()},
			&SeriesFetchReq{WindowNano: rng.Int63(), Names: []string{"queue.depth"}},
			&SeriesFetchResp{Node: "data-0", TickNano: rng.Int63(),
				Series: []byte(`[{"name":"queue.depth","points":[{"t":1,"v":2}]}]`)},
			&DecisionLogReq{Limit: rng.Uint64(), TraceID: rng.Uint64()},
			&DecisionLogResp{Node: "data-0", Dropped: rng.Uint64(),
				Records: []byte(`[{"seq":1,"solver":"maxgain","trigger":"admit"}]`)},
		}
		for _, msg := range msgs {
			var buf bytes.Buffer
			if err := WriteMessage(&buf, msg); err != nil {
				return false
			}
			raw := buf.Bytes()
			// Corrupt 1..8 bytes of the payload region (not the length
			// prefix, which would just change how much we read).
			for i := 0; i < int(flips)%8+1; i++ {
				pos := 6 + rng.Intn(len(raw)-6)
				raw[pos] ^= byte(1 << rng.Intn(8))
			}
			_, err := ReadMessage(bytes.NewReader(raw))
			_ = err
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A frame whose inner length prefixes overrun the payload must error, not
// over-read or allocate absurdly.
func TestDecoderInnerLengthOverrun(t *testing.T) {
	// Hand-craft an OpenReq whose string length claims 1 GB.
	payload := make([]byte, 4)
	binary.LittleEndian.PutUint32(payload, 1<<30)
	frame := make([]byte, 6+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(2+len(payload)))
	binary.LittleEndian.PutUint16(frame[4:6], uint16(MsgOpenReq))
	copy(frame[6:], payload)
	if _, err := ReadMessage(bytes.NewReader(frame)); err == nil {
		t.Fatal("oversized inner length accepted")
	}
}

// Property: the pooled FrameReader survives arbitrary garbage exactly
// like ReadMessage does — no panic, no buffer-state corruption that
// poisons later reads. After the garbage, a valid frame on a fresh
// reader must still decode (the pool saw no torn buffers).
func TestFrameReaderNeverPanicsOnGarbage(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		raw := make([]byte, int(n)%4096)
		rng.Read(raw)
		fr := NewFrameReader(bytes.NewReader(raw))
		for {
			if _, err := fr.Read(); err != nil {
				break // any error path is fine; surviving is the property
			}
		}
		fr.Close()
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &ReadReq{Handle: 1, Length: 64}); err != nil {
			return false
		}
		fr2 := NewFrameReader(&buf)
		defer fr2.Close()
		m, err := fr2.Read()
		if err != nil {
			return false
		}
		rr, ok := m.(*ReadReq)
		return ok && rr.Handle == 1 && rr.Length == 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random well-formed messages round-trip byte-exactly through
// the pooled encode path and a FrameReader that is reused across many
// frames of different sizes (forcing buffer growth and pool churn).
func TestFrameReaderPooledRoundTripFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var stream bytes.Buffer
		var sent []Message
		for i := 0; i < 16; i++ {
			data := make([]byte, rng.Intn(8192))
			rng.Read(data)
			var m Message
			switch rng.Intn(3) {
			case 0:
				m = &ReadResp{Data: data, EOF: rng.Intn(2) == 0}
			case 1:
				m = &WriteReq{Handle: rng.Uint64(), Offset: rng.Uint64(), Data: data}
			default:
				m = &ActiveReadResp{RequestID: rng.Uint64(), Result: data}
			}
			if err := WriteMessage(&stream, m); err != nil {
				return false
			}
			sent = append(sent, m)
		}
		fr := NewFrameReader(&stream)
		defer fr.Close()
		for _, want := range sent {
			got, err := fr.Read()
			if err != nil {
				return false
			}
			var wb, gb bytes.Buffer
			if err := WriteMessage(&wb, want); err != nil {
				return false
			}
			if err := WriteMessage(&gb, got); err != nil {
				return false
			}
			if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteMessageSmall(b *testing.B) {
	msg := &ReadReq{Handle: 1, Offset: 1 << 20, Length: 65536}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMessageRoundTripBulk(b *testing.B) {
	data := make([]byte, 1<<20)
	msg := &ReadResp{Data: data, EOF: false}
	var buf bytes.Buffer
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeActiveReadReq(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &ActiveReadReq{
		RequestID: 1, Handle: 2, Offset: 3, Length: 4,
		Op: "gaussian2d", Params: []byte{1, 2, 3, 4},
	}); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadMessage(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
