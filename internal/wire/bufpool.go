package wire

import (
	"math/bits"
	"sync"
)

// The data path moves every stripe chunk through three transient buffers —
// the server's store read buffer, the frame encode buffer, and the peer's
// frame decode buffer — so a naive implementation allocates ~3× the
// payload per transfer. This pool recycles all three. Buffers are
// size-classed by power of two: a buffer handed out for class c always has
// capacity ≥ 1<<c, and a returned buffer is filed under the largest class
// its capacity covers, so growth via append (which may land on an
// arbitrary capacity) still recycles.
//
// Ownership rules (enforced by tests in bufpool_test.go and
// robustness_test.go):
//
//   - WriteMessage owns its encode buffer internally; callers never see it.
//   - A FrameReader owns one decode buffer; messages it returns may alias
//     that buffer and are valid only until the next Read on the same
//     reader. Call Own (or copy the fields) to retain them.
//   - The data server's read path takes a buffer with GetBuf and hands it
//     to the response; the server returns it to the pool in PostWrite,
//     after the response frame (a copy) has left the connection.
const (
	minBufClass = 6  // 64 B — below this, pooling costs more than it saves
	maxBufClass = 26 // 64 MiB — MaxFrameSize; nothing larger crosses the wire
)

var bufPools [maxBufClass + 1]sync.Pool

// bufClass returns the smallest class whose buffers hold n bytes.
func bufClass(n int) int {
	if n <= 1<<minBufClass {
		return minBufClass
	}
	return bits.Len(uint(n - 1))
}

// GetBuf returns a buffer of length n (capacity possibly larger) from the
// pool, allocating a fresh one when the class is empty or n exceeds the
// largest class.
func GetBuf(n int) []byte {
	c := bufClass(n)
	if c > maxBufClass {
		return make([]byte, n)
	}
	if v := bufPools[c].Get(); v != nil {
		b := *v.(*[]byte)
		return b[:n]
	}
	return make([]byte, n, 1<<c)
}

// PutBuf returns b to the pool. The caller must not touch b (or any slice
// aliasing it) afterwards. Buffers too small or too large to class are
// dropped for the garbage collector.
func PutBuf(b []byte) {
	c := capClass(cap(b))
	if c < 0 {
		return
	}
	b = b[:cap(b)]
	bufPools[c].Put(&b)
}

// capClass returns the largest class a capacity of n fully covers, or -1
// when n falls outside the pooled range.
func capClass(n int) int {
	if n < 1<<minBufClass {
		return -1
	}
	c := bits.Len(uint(n)) - 1 // floor(log2 n)
	if c > maxBufClass {
		return -1
	}
	return c
}
