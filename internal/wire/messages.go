package wire

import "sync/atomic"

// Status codes carried by ErrorMsg. These travel on the wire; append only.
const (
	StatusOK uint32 = iota
	StatusNotFound
	StatusExists
	StatusInvalid
	StatusOverloaded
	StatusInternal
	StatusUnsupported
	StatusCancelled
)

// ErrorMsg is the generic failure response for any request.
type ErrorMsg struct {
	Code   uint32 // one of the Status* codes
	Op     string // the operation that failed, e.g. "open"
	Detail string // human-readable context
}

func (*ErrorMsg) Type() MsgType { return MsgError }

func (m *ErrorMsg) Encode(e *Encoder) {
	e.PutU32(m.Code)
	e.PutString(m.Op)
	e.PutString(m.Detail)
}

func (m *ErrorMsg) Decode(d *Decoder) {
	m.Code = d.U32()
	m.Op = d.String()
	m.Detail = d.String()
}

// Ping is a liveness probe; the peer answers with Pong echoing Seq.
type Ping struct{ Seq uint64 }

func (*Ping) Type() MsgType       { return MsgPing }
func (m *Ping) Encode(e *Encoder) { e.PutU64(m.Seq) }
func (m *Ping) Decode(d *Decoder) { m.Seq = d.U64() }

// Pong answers a Ping.
type Pong struct{ Seq uint64 }

func (*Pong) Type() MsgType       { return MsgPong }
func (m *Pong) Encode(e *Encoder) { e.PutU64(m.Seq) }
func (m *Pong) Decode(d *Decoder) { m.Seq = d.U64() }

// Layout describes how a file's bytes are striped across data servers:
// round-robin stripes of StripeSize bytes over Servers, in order. With
// Replicas > 1, replica r of the stripe owned by slot s lives on
// Servers[(s+r) mod len(Servers)] under a replica-tagged handle.
type Layout struct {
	StripeSize uint32
	Servers    []uint32 // indices into the cluster's data-server table
	Replicas   uint8    // copies of each stripe; 0 and 1 both mean one
}

// ReplicaCount normalises Replicas (0 means 1).
func (l Layout) ReplicaCount() int {
	if l.Replicas < 1 {
		return 1
	}
	return int(l.Replicas)
}

func (l *Layout) encode(e *Encoder) {
	e.PutU32(l.StripeSize)
	e.PutU8(l.Replicas)
	e.PutU32(uint32(len(l.Servers)))
	for _, s := range l.Servers {
		e.PutU32(s)
	}
}

func (l *Layout) decode(d *Decoder) {
	l.StripeSize = d.U32()
	l.Replicas = d.U8()
	n := int(d.U32())
	if n*4 > d.Remaining() {
		d.err = ErrShortPayload
		return
	}
	l.Servers = make([]uint32, n)
	for i := range l.Servers {
		l.Servers[i] = d.U32()
	}
}

// CreateReq asks the metadata server to create a file.
type CreateReq struct {
	Name       string
	StripeSize uint32 // 0 means the server default
	Width      uint32 // number of data servers to stripe over; 0 means all
	// Placement, when non-empty, pins the stripe layout to exactly these
	// data-server indices in order (Width is then ignored). Used to
	// co-locate a transform's output with its input.
	Placement []uint32
	// Replicas asks for this many copies of every stripe (0 and 1 both
	// mean no redundancy). Must not exceed the stripe width.
	Replicas uint8
}

func (*CreateReq) Type() MsgType { return MsgCreateReq }

func (m *CreateReq) Encode(e *Encoder) {
	e.PutString(m.Name)
	e.PutU32(m.StripeSize)
	e.PutU32(m.Width)
	e.PutU32(uint32(len(m.Placement)))
	for _, s := range m.Placement {
		e.PutU32(s)
	}
	e.PutU8(m.Replicas)
}

func (m *CreateReq) Decode(d *Decoder) {
	m.Name = d.String()
	m.StripeSize = d.U32()
	m.Width = d.U32()
	n := int(d.U32())
	if n*4 > d.Remaining() {
		d.err = ErrShortPayload
		return
	}
	if n > 0 {
		m.Placement = make([]uint32, n)
		for i := range m.Placement {
			m.Placement[i] = d.U32()
		}
	}
	m.Replicas = d.U8()
}

// CreateResp returns the handle and layout of a newly created file.
type CreateResp struct {
	Handle uint64
	Layout Layout
}

func (*CreateResp) Type() MsgType { return MsgCreateResp }

func (m *CreateResp) Encode(e *Encoder) {
	e.PutU64(m.Handle)
	m.Layout.encode(e)
}

func (m *CreateResp) Decode(d *Decoder) {
	m.Handle = d.U64()
	m.Layout.decode(d)
}

// OpenReq looks a file up by name.
type OpenReq struct {
	Name string
	// Tenant attributes this lookup for metadata QoS. Optional trailing
	// field, encoded only when non-empty (see ReadReq.Tenant).
	Tenant string
}

func (*OpenReq) Type() MsgType { return MsgOpenReq }

func (m *OpenReq) Encode(e *Encoder) {
	e.PutString(m.Name)
	if m.Tenant != "" {
		e.PutString(m.Tenant)
	}
}

func (m *OpenReq) Decode(d *Decoder) {
	m.Name = d.String()
	if d.Remaining() > 0 {
		m.Tenant = d.String()
	}
}

// OpenResp returns everything a client needs to address a file's stripes.
type OpenResp struct {
	Handle uint64
	Size   uint64
	Layout Layout
}

func (*OpenResp) Type() MsgType { return MsgOpenResp }

func (m *OpenResp) Encode(e *Encoder) {
	e.PutU64(m.Handle)
	e.PutU64(m.Size)
	m.Layout.encode(e)
}

func (m *OpenResp) Decode(d *Decoder) {
	m.Handle = d.U64()
	m.Size = d.U64()
	m.Layout.decode(d)
}

// StatReq asks for file metadata by name.
type StatReq struct {
	Name string
	// Tenant attributes this stat for metadata QoS. Optional trailing
	// field, encoded only when non-empty (see ReadReq.Tenant).
	Tenant string
}

func (*StatReq) Type() MsgType { return MsgStatReq }

func (m *StatReq) Encode(e *Encoder) {
	e.PutString(m.Name)
	if m.Tenant != "" {
		e.PutString(m.Tenant)
	}
}

func (m *StatReq) Decode(d *Decoder) {
	m.Name = d.String()
	if d.Remaining() > 0 {
		m.Tenant = d.String()
	}
}

// StatResp carries file metadata.
type StatResp struct {
	Handle   uint64
	Size     uint64
	ModUnixN int64 // modification time, Unix nanoseconds
	Layout   Layout
}

func (*StatResp) Type() MsgType { return MsgStatResp }

func (m *StatResp) Encode(e *Encoder) {
	e.PutU64(m.Handle)
	e.PutU64(m.Size)
	e.PutI64(m.ModUnixN)
	m.Layout.encode(e)
}

func (m *StatResp) Decode(d *Decoder) {
	m.Handle = d.U64()
	m.Size = d.U64()
	m.ModUnixN = d.I64()
	m.Layout.decode(d)
}

// RemoveReq deletes a file by name.
type RemoveReq struct{ Name string }

func (*RemoveReq) Type() MsgType       { return MsgRemoveReq }
func (m *RemoveReq) Encode(e *Encoder) { e.PutString(m.Name) }
func (m *RemoveReq) Decode(d *Decoder) { m.Name = d.String() }

// RemoveResp acknowledges a Remove. Handle lets storage servers be told to
// drop the file's stripes.
type RemoveResp struct{ Handle uint64 }

func (*RemoveResp) Type() MsgType       { return MsgRemoveResp }
func (m *RemoveResp) Encode(e *Encoder) { e.PutU64(m.Handle) }
func (m *RemoveResp) Decode(d *Decoder) { m.Handle = d.U64() }

// ListReq enumerates files whose names start with Prefix.
type ListReq struct {
	Prefix string
	// Tenant attributes this listing for metadata QoS. Optional trailing
	// field, encoded only when non-empty (see ReadReq.Tenant).
	Tenant string
}

func (*ListReq) Type() MsgType { return MsgListReq }

func (m *ListReq) Encode(e *Encoder) {
	e.PutString(m.Prefix)
	if m.Tenant != "" {
		e.PutString(m.Tenant)
	}
}

func (m *ListReq) Decode(d *Decoder) {
	m.Prefix = d.String()
	if d.Remaining() > 0 {
		m.Tenant = d.String()
	}
}

// ListResp carries matching names in lexical order.
type ListResp struct{ Names []string }

func (*ListResp) Type() MsgType       { return MsgListResp }
func (m *ListResp) Encode(e *Encoder) { e.PutStrings(m.Names) }
func (m *ListResp) Decode(d *Decoder) { m.Names = d.Strings() }

// SetSizeReq extends a file's recorded size after a write. The metadata
// server keeps the maximum of the current and requested sizes, so
// concurrent writers converge without coordination.
type SetSizeReq struct {
	Handle uint64
	Size   uint64
}

func (*SetSizeReq) Type() MsgType { return MsgSetSizeReq }

func (m *SetSizeReq) Encode(e *Encoder) {
	e.PutU64(m.Handle)
	e.PutU64(m.Size)
}

func (m *SetSizeReq) Decode(d *Decoder) {
	m.Handle = d.U64()
	m.Size = d.U64()
}

// SetSizeResp returns the size now on record.
type SetSizeResp struct{ Size uint64 }

func (*SetSizeResp) Type() MsgType       { return MsgSetSizeResp }
func (m *SetSizeResp) Encode(e *Encoder) { e.PutU64(m.Size) }
func (m *SetSizeResp) Decode(d *Decoder) { m.Size = d.U64() }

// ReadReq reads Length bytes at Offset from a data server's local byte
// stream for Handle. Offsets are server-local: the striping client maps
// file offsets to (server, local offset) pairs.
type ReadReq struct {
	Handle uint64
	Offset uint64
	Length uint32
	// Tenant attributes this request's resource usage. Optional trailing
	// field, encoded only when non-empty: an empty tenant IS the default
	// tenant, so default-tenant clients emit frames byte-identical to
	// pre-tenant peers and either side of an old/new pairing interops.
	Tenant string
	// ReqID, when non-zero, registers this read for cancellation: a
	// CancelReq carrying the same id makes the server stop serving it
	// (queued reads are dropped, in-flight responses zero-fill their
	// remaining segments). Hedged reads mint these so the losing replica
	// can be withdrawn. Third-generation optional trailing field, after
	// Tenant; when ReqID is set an empty tenant is encoded explicitly so
	// the fields stay positional.
	ReqID uint64
}

func (*ReadReq) Type() MsgType { return MsgReadReq }

func (m *ReadReq) Encode(e *Encoder) {
	e.PutU64(m.Handle)
	e.PutU64(m.Offset)
	e.PutU32(m.Length)
	if m.Tenant != "" || m.ReqID != 0 {
		e.PutString(m.Tenant)
	}
	if m.ReqID != 0 {
		e.PutU64(m.ReqID)
	}
}

func (m *ReadReq) Decode(d *Decoder) {
	m.Handle = d.U64()
	m.Offset = d.U64()
	m.Length = d.U32()
	if d.Remaining() > 0 {
		m.Tenant = d.String()
	}
	if d.Remaining() > 0 {
		m.ReqID = d.U64()
	}
}

// ReadResp returns the requested bytes. A short Data with EOF set means the
// local stream ended.
type ReadResp struct {
	Data []byte
	EOF  bool

	// Payload is not part of the wire format: when non-nil the response
	// body is served by reference from it (disk-backed zero-copy read
	// path) and Data is nil. The wire bytes are identical either way —
	// receivers always decode into Data. The sending data server closes
	// the payload in PostWrite, after the frame has left the connection.
	Payload Payload

	// PoolBuf is not part of the wire format. When non-nil it is the
	// pooled buffer Data aliases; the sending data server sets it so the
	// buffer can be recycled (PutBuf) once the response frame — which is
	// a copy — has been written. Decoded responses leave it nil.
	PoolBuf []byte

	// Cancelled is not part of the wire format. When non-nil the frame
	// writers check it between bulk segments: once it reads true the
	// remaining body bytes are zero-filled instead of served, so a
	// cancelled read stops consuming disk and memory bandwidth promptly
	// while the frame stays protocol-complete (its length was already
	// committed). Receivers never see it.
	Cancelled *atomic.Bool
}

func (*ReadResp) Type() MsgType { return MsgReadResp }

func (m *ReadResp) Encode(e *Encoder) {
	if m.Payload != nil {
		// Inline fallback for writers without a streaming fast path:
		// materialize the payload into the frame buffer.
		e.PutPayload(m.Payload)
		e.PutBool(m.EOF)
		return
	}
	e.PutBytes(m.Data)
	e.PutBool(m.EOF)
}

func (m *ReadResp) Decode(d *Decoder) {
	m.Data = d.Bytes()
	m.EOF = d.Bool()
}

// Own implements Owner: Data may alias a pooled frame buffer.
func (m *ReadResp) Own() { m.Data = detach(m.Data) }

// encodedSizeHint sizes the frame buffer for the bulk payload.
func (m *ReadResp) encodedSizeHint() int {
	if m.Payload != nil {
		return int(m.Payload.Len()) + 8
	}
	return len(m.Data) + 8
}

// bulkRef implements payloadCarrier: the body is Data or Payload.
func (m *ReadResp) bulkRef() ([]byte, Payload) { return m.Data, m.Payload }

// encodePre implements payloadCarrier: the body's u32 length prefix.
func (m *ReadResp) encodePre(e *Encoder, bodyLen int) { e.PutU32(uint32(bodyLen)) }

// encodePost implements payloadCarrier: the trailing EOF flag.
func (m *ReadResp) encodePost(e *Encoder) { e.PutBool(m.EOF) }

// cancelFlag implements cancelCarrier: the frame writers poll this
// between segments.
func (m *ReadResp) cancelFlag() *atomic.Bool { return m.Cancelled }

// WriteReq writes Data at the server-local Offset for Handle.
type WriteReq struct {
	Handle uint64
	Offset uint64
	Data   []byte
	// Tenant attributes this request. Optional trailing field, encoded
	// only when non-empty (see ReadReq.Tenant).
	Tenant string
}

func (*WriteReq) Type() MsgType { return MsgWriteReq }

func (m *WriteReq) Encode(e *Encoder) {
	e.PutU64(m.Handle)
	e.PutU64(m.Offset)
	e.PutBytes(m.Data)
	if m.Tenant != "" {
		e.PutString(m.Tenant)
	}
}

func (m *WriteReq) Decode(d *Decoder) {
	m.Handle = d.U64()
	m.Offset = d.U64()
	m.Data = d.Bytes()
	if d.Remaining() > 0 {
		m.Tenant = d.String()
	}
}

// Own implements Owner: Data may alias a pooled frame buffer.
func (m *WriteReq) Own() { m.Data = detach(m.Data) }

// encodedSizeHint sizes the frame buffer for the bulk payload.
func (m *WriteReq) encodedSizeHint() int { return len(m.Data) + len(m.Tenant) + 28 }

// WriteResp acknowledges the number of bytes durably applied.
type WriteResp struct{ N uint32 }

func (*WriteResp) Type() MsgType       { return MsgWriteResp }
func (m *WriteResp) Encode(e *Encoder) { e.PutU32(m.N) }
func (m *WriteResp) Decode(d *Decoder) { m.N = d.U32() }

// TruncReq truncates (or removes, when Size is 0 and Remove is set) the
// server-local stream for Handle.
type TruncReq struct {
	Handle uint64
	Size   uint64
	Remove bool
	// Tenant attributes this request. Optional trailing field, encoded
	// only when non-empty (see ReadReq.Tenant).
	Tenant string
}

func (*TruncReq) Type() MsgType { return MsgTruncReq }

func (m *TruncReq) Encode(e *Encoder) {
	e.PutU64(m.Handle)
	e.PutU64(m.Size)
	e.PutBool(m.Remove)
	if m.Tenant != "" {
		e.PutString(m.Tenant)
	}
}

func (m *TruncReq) Decode(d *Decoder) {
	m.Handle = d.U64()
	m.Size = d.U64()
	m.Remove = d.Bool()
	if d.Remaining() > 0 {
		m.Tenant = d.String()
	}
}

// TruncResp acknowledges a TruncReq.
type TruncResp struct{}

func (*TruncResp) Type() MsgType   { return MsgTruncResp }
func (*TruncResp) Encode(*Encoder) {}
func (*TruncResp) Decode(*Decoder) {}

// ActiveReadReq asks a storage server to run kernel Op over the
// server-local byte range [Offset, Offset+Length) of Handle and return the
// (small) result instead of the raw bytes. This is the wire form of the
// paper's MPI_File_read_ex.
type ActiveReadReq struct {
	RequestID uint64 // client-chosen id, used by CancelReq
	Handle    uint64
	Offset    uint64
	Length    uint64
	Op        string // kernel name in the registry, e.g. "sum64"
	Params    []byte // kernel-specific parameters (encoded by the kernel)
	// ResumeState carries a kernel checkpoint when the client re-issues a
	// previously interrupted request; empty for fresh requests.
	ResumeState []byte
	// TraceID is the distributed trace context minted by the client for
	// this active read; 0 when the peer predates tracing. Optional
	// trailing field: old-format frames omit it and still decode.
	TraceID uint64
	// Tenant attributes this request. Second-generation optional
	// trailing field, after TraceID, encoded only when non-empty (see
	// ReadReq.Tenant).
	Tenant string
}

func (*ActiveReadReq) Type() MsgType { return MsgActiveReadReq }

func (m *ActiveReadReq) Encode(e *Encoder) {
	e.PutU64(m.RequestID)
	e.PutU64(m.Handle)
	e.PutU64(m.Offset)
	e.PutU64(m.Length)
	e.PutString(m.Op)
	e.PutBytes(m.Params)
	e.PutBytes(m.ResumeState)
	e.PutU64(m.TraceID)
	if m.Tenant != "" {
		e.PutString(m.Tenant)
	}
}

func (m *ActiveReadReq) Decode(d *Decoder) {
	m.RequestID = d.U64()
	m.Handle = d.U64()
	m.Offset = d.U64()
	m.Length = d.U64()
	m.Op = d.String()
	m.Params = d.Bytes()
	m.ResumeState = d.Bytes()
	if d.Remaining() > 0 {
		m.TraceID = d.U64()
	}
	if d.Remaining() > 0 {
		m.Tenant = d.String()
	}
}

// Own implements Owner: Params and ResumeState may alias a pooled frame
// buffer.
func (m *ActiveReadReq) Own() {
	m.Params = detach(m.Params)
	m.ResumeState = detach(m.ResumeState)
}

// Dispositions of an active read, carried in ActiveReadResp.Disposition.
const (
	// ActiveDone: the kernel ran to completion on the storage node;
	// Result holds the final output (paper: completed = 1).
	ActiveDone uint8 = iota
	// ActiveRejected: the scheduling policy bounced the request before it
	// started; the client must do a normal read and run the kernel
	// locally (paper: completed = 0, buf = null).
	ActiveRejected
	// ActiveInterrupted: the kernel started but was preempted; State
	// holds its checkpoint and Processed the bytes already consumed
	// (paper: completed = 0, buf = saved status).
	ActiveInterrupted
)

// ActiveReadResp answers an ActiveReadReq. It is the wire form of the
// paper's struct result (Table I).
type ActiveReadResp struct {
	RequestID   uint64
	Disposition uint8  // ActiveDone, ActiveRejected, or ActiveInterrupted
	Result      []byte // kernel output when Disposition == ActiveDone
	State       []byte // kernel checkpoint when ActiveInterrupted
	Processed   uint64 // bytes already consumed by the kernel
	// TraceID echoes the request's trace context so responses can be
	// correlated without a lookup table. Optional trailing field.
	TraceID uint64
}

func (*ActiveReadResp) Type() MsgType { return MsgActiveReadResp }

func (m *ActiveReadResp) Encode(e *Encoder) {
	e.PutU64(m.RequestID)
	e.PutU8(m.Disposition)
	e.PutBytes(m.Result)
	e.PutBytes(m.State)
	e.PutU64(m.Processed)
	e.PutU64(m.TraceID)
}

func (m *ActiveReadResp) Decode(d *Decoder) {
	m.RequestID = d.U64()
	m.Disposition = d.U8()
	m.Result = d.Bytes()
	m.State = d.Bytes()
	m.Processed = d.U64()
	if d.Remaining() > 0 {
		m.TraceID = d.U64()
	}
}

// Own implements Owner: Result and State may alias a pooled frame buffer.
func (m *ActiveReadResp) Own() {
	m.Result = detach(m.Result)
	m.State = detach(m.State)
}

// encodedSizeHint sizes the frame buffer for the kernel output.
func (m *ActiveReadResp) encodedSizeHint() int { return len(m.Result) + len(m.State) + 48 }

// ProbeReq asks a storage server for its load status (the Contention
// Estimator's periodic probe).
type ProbeReq struct{}

func (*ProbeReq) Type() MsgType   { return MsgProbeReq }
func (*ProbeReq) Encode(*Encoder) {}
func (*ProbeReq) Decode(*Decoder) {}

// ProbeResp is a snapshot of a storage server's load: the inputs the paper
// lists for the CE — I/O queue, CPU utilisation, memory utilisation.
type ProbeResp struct {
	QueueLen       uint32  // normal I/O requests queued or in flight
	ActiveQueueLen uint32  // active I/O requests queued or in flight
	BusyCores      float64 // cores currently executing kernels
	TotalCores     uint32  // cores available to the active runtime
	MemUsed        uint64  // bytes of kernel working memory in use
	MemTotal       uint64  // configured memory budget
	BytesQueued    uint64  // total request bytes awaiting service
}

func (*ProbeResp) Type() MsgType { return MsgProbeResp }

func (m *ProbeResp) Encode(e *Encoder) {
	e.PutU32(m.QueueLen)
	e.PutU32(m.ActiveQueueLen)
	e.PutF64(m.BusyCores)
	e.PutU32(m.TotalCores)
	e.PutU64(m.MemUsed)
	e.PutU64(m.MemTotal)
	e.PutU64(m.BytesQueued)
}

func (m *ProbeResp) Decode(d *Decoder) {
	m.QueueLen = d.U32()
	m.ActiveQueueLen = d.U32()
	m.BusyCores = d.F64()
	m.TotalCores = d.U32()
	m.MemUsed = d.U64()
	m.MemTotal = d.U64()
	m.BytesQueued = d.U64()
}

// CancelReq withdraws a pending or running active read.
type CancelReq struct {
	RequestID uint64
	// TraceID is the request's trace context. Optional trailing field.
	TraceID uint64
}

func (*CancelReq) Type() MsgType { return MsgCancelReq }

func (m *CancelReq) Encode(e *Encoder) {
	e.PutU64(m.RequestID)
	e.PutU64(m.TraceID)
}

func (m *CancelReq) Decode(d *Decoder) {
	m.RequestID = d.U64()
	if d.Remaining() > 0 {
		m.TraceID = d.U64()
	}
}

// CancelResp reports whether the request was found (still pending or
// running) when the cancel arrived.
type CancelResp struct{ Found bool }

func (*CancelResp) Type() MsgType       { return MsgCancelResp }
func (m *CancelResp) Encode(e *Encoder) { e.PutBool(m.Found) }
func (m *CancelResp) Decode(d *Decoder) { m.Found = d.Bool() }

// TransformReq asks a storage server to run kernel Op over the
// server-local range [Offset, Offset+Length) of SrcHandle and write the
// output to the server-local stream of DstHandle at DstOffset — active
// write-back: neither input nor output crosses the network. The source
// and destination files must share a stripe layout and the operation must
// be size-preserving, which the client validates before issuing.
type TransformReq struct {
	RequestID uint64
	SrcHandle uint64
	Offset    uint64
	Length    uint64
	Op        string
	Params    []byte
	DstHandle uint64
	DstOffset uint64
	// TraceID is the client-minted trace context. Optional trailing field.
	TraceID uint64
	// Tenant attributes this request. Second-generation optional
	// trailing field, after TraceID, encoded only when non-empty (see
	// ReadReq.Tenant).
	Tenant string
}

func (*TransformReq) Type() MsgType { return MsgTransformReq }

func (m *TransformReq) Encode(e *Encoder) {
	e.PutU64(m.RequestID)
	e.PutU64(m.SrcHandle)
	e.PutU64(m.Offset)
	e.PutU64(m.Length)
	e.PutString(m.Op)
	e.PutBytes(m.Params)
	e.PutU64(m.DstHandle)
	e.PutU64(m.DstOffset)
	e.PutU64(m.TraceID)
	if m.Tenant != "" {
		e.PutString(m.Tenant)
	}
}

func (m *TransformReq) Decode(d *Decoder) {
	m.RequestID = d.U64()
	m.SrcHandle = d.U64()
	m.Offset = d.U64()
	m.Length = d.U64()
	m.Op = d.String()
	m.Params = d.Bytes()
	m.DstHandle = d.U64()
	m.DstOffset = d.U64()
	if d.Remaining() > 0 {
		m.TraceID = d.U64()
	}
	if d.Remaining() > 0 {
		m.Tenant = d.String()
	}
}

// Own implements Owner: Params may alias a pooled frame buffer.
func (m *TransformReq) Own() { m.Params = detach(m.Params) }

// LocalSizeReq asks a data server for the length of its local stream for
// Handle — the inspection primitive behind fsck and replica repair.
type LocalSizeReq struct{ Handle uint64 }

func (*LocalSizeReq) Type() MsgType       { return MsgLocalSizeReq }
func (m *LocalSizeReq) Encode(e *Encoder) { e.PutU64(m.Handle) }
func (m *LocalSizeReq) Decode(d *Decoder) { m.Handle = d.U64() }

// LocalSizeResp returns the local stream length (0 when absent).
type LocalSizeResp struct{ Size uint64 }

func (*LocalSizeResp) Type() MsgType       { return MsgLocalSizeResp }
func (m *LocalSizeResp) Encode(e *Encoder) { e.PutU64(m.Size) }
func (m *LocalSizeResp) Decode(d *Decoder) { m.Size = d.U64() }

// TransformResp acknowledges a TransformReq with the number of output
// bytes written locally.
type TransformResp struct {
	RequestID uint64
	Written   uint64
}

func (*TransformResp) Type() MsgType { return MsgTransformResp }

func (m *TransformResp) Encode(e *Encoder) {
	e.PutU64(m.RequestID)
	e.PutU64(m.Written)
}

func (m *TransformResp) Decode(d *Decoder) {
	m.RequestID = d.U64()
	m.Written = d.U64()
}

// StatsReq asks a server (metadata or storage) for a structured snapshot
// of its metrics registry — the machine-readable replacement for scraping
// the free-text Dump.
type StatsReq struct{}

func (*StatsReq) Type() MsgType   { return MsgStatsReq }
func (*StatsReq) Encode(*Encoder) {}
func (*StatsReq) Decode(*Decoder) {}

// StatsResp carries one node's metrics snapshot. Stats is the JSON
// encoding of a metrics.Snapshot; keeping it opaque here lets the metrics
// schema evolve without touching the wire format.
type StatsResp struct {
	Node  string // node identity, e.g. "data-0" or "meta"
	Role  string // "data" or "meta"
	Mode  string // scheduling mode for data nodes ("dosas", "as", "ts")
	Stats []byte // JSON-encoded metrics.Snapshot
}

func (*StatsResp) Type() MsgType { return MsgStatsResp }

func (m *StatsResp) Encode(e *Encoder) {
	e.PutString(m.Node)
	e.PutString(m.Role)
	e.PutString(m.Mode)
	e.PutBytes(m.Stats)
}

func (m *StatsResp) Decode(d *Decoder) {
	m.Node = d.String()
	m.Role = d.String()
	m.Mode = d.String()
	m.Stats = d.Bytes()
}

// Own implements Owner: Stats may alias a pooled frame buffer.
func (m *StatsResp) Own() { m.Stats = detach(m.Stats) }

// TraceFetchReq asks a server for its retained trace events, optionally
// filtered to one request id or one trace context (0 means no filter).
type TraceFetchReq struct {
	ReqID   uint64
	TraceID uint64
}

func (*TraceFetchReq) Type() MsgType { return MsgTraceFetchReq }

func (m *TraceFetchReq) Encode(e *Encoder) {
	e.PutU64(m.ReqID)
	e.PutU64(m.TraceID)
}

func (m *TraceFetchReq) Decode(d *Decoder) {
	m.ReqID = d.U64()
	m.TraceID = d.U64()
}

// TraceFetchResp returns the matching events as a JSON array of
// trace.Event, stamped with the serving node's identity.
type TraceFetchResp struct {
	Node   string
	Events []byte // JSON-encoded []trace.Event
	// Dropped counts events the serving node's trace ring overwrote
	// before this fetch — non-zero means the timeline may be incomplete.
	// Optional trailing field: old-format frames omit it.
	Dropped uint64
}

func (*TraceFetchResp) Type() MsgType { return MsgTraceFetchResp }

func (m *TraceFetchResp) Encode(e *Encoder) {
	e.PutString(m.Node)
	e.PutBytes(m.Events)
	e.PutU64(m.Dropped)
}

func (m *TraceFetchResp) Decode(d *Decoder) {
	m.Node = d.String()
	m.Events = d.Bytes()
	if d.Remaining() > 0 {
		m.Dropped = d.U64()
	}
}

// Own implements Owner: Events may alias a pooled frame buffer.
func (m *TraceFetchResp) Own() { m.Events = detach(m.Events) }

// HealthReq asks a server for liveness plus per-resource readiness. Any
// well-formed response means the node is live; the checks inside say
// whether it is also ready (queue not saturated, estimator attached,
// memory below the high-water mark).
type HealthReq struct{}

func (*HealthReq) Type() MsgType   { return MsgHealthReq }
func (*HealthReq) Encode(*Encoder) {}
func (*HealthReq) Decode(*Decoder) {}

// HealthResp carries one node's health report. Checks is the JSON
// encoding of []telemetry.Check; keeping it opaque here lets the check
// set evolve without touching the wire format (the StatsResp pattern).
type HealthResp struct {
	Node   string // node identity, e.g. "data-0" or "meta"
	Role   string // "data" or "meta"
	Ready  bool   // conjunction of all checks
	Checks []byte // JSON-encoded []telemetry.Check
	// UptimeNano is how long the serving process has been up. Optional
	// trailing field: old-format frames omit it and still decode.
	UptimeNano int64
}

func (*HealthResp) Type() MsgType { return MsgHealthResp }

func (m *HealthResp) Encode(e *Encoder) {
	e.PutString(m.Node)
	e.PutString(m.Role)
	e.PutBool(m.Ready)
	e.PutBytes(m.Checks)
	e.PutI64(m.UptimeNano)
}

func (m *HealthResp) Decode(d *Decoder) {
	m.Node = d.String()
	m.Role = d.String()
	m.Ready = d.Bool()
	m.Checks = d.Bytes()
	if d.Remaining() > 0 {
		m.UptimeNano = d.I64()
	}
}

// Own implements Owner: Checks may alias a pooled frame buffer.
func (m *HealthResp) Own() { m.Checks = detach(m.Checks) }

// SeriesFetchReq asks a server for its telemetry sampler's retained
// history, restricted to the trailing window (WindowNano <= 0 means
// everything retained) and optionally to named series (empty means all).
type SeriesFetchReq struct {
	WindowNano int64
	Names      []string
}

func (*SeriesFetchReq) Type() MsgType { return MsgSeriesFetchReq }

func (m *SeriesFetchReq) Encode(e *Encoder) {
	e.PutI64(m.WindowNano)
	e.PutStrings(m.Names)
}

func (m *SeriesFetchReq) Decode(d *Decoder) {
	m.WindowNano = d.I64()
	m.Names = d.Strings()
}

// SeriesFetchResp returns the matching series as a JSON array of
// telemetry.Series, stamped with the serving node's identity.
type SeriesFetchResp struct {
	Node   string
	Series []byte // JSON-encoded []telemetry.Series
	// TickNano is the serving sampler's tick interval, so consumers can
	// turn point counts into durations. Optional trailing field.
	TickNano int64
	// Dropped is how many samples the node's telemetry rings have
	// overwritten since boot: non-zero means the fetched series are a
	// suffix of the node's true history (the trace ring convention).
	// Optional trailing field added after TickNano.
	Dropped uint64
}

func (*SeriesFetchResp) Type() MsgType { return MsgSeriesFetchResp }

func (m *SeriesFetchResp) Encode(e *Encoder) {
	e.PutString(m.Node)
	e.PutBytes(m.Series)
	e.PutI64(m.TickNano)
	e.PutU64(m.Dropped)
}

func (m *SeriesFetchResp) Decode(d *Decoder) {
	m.Node = d.String()
	m.Series = d.Bytes()
	if d.Remaining() > 0 {
		m.TickNano = d.I64()
	}
	if d.Remaining() > 0 {
		m.Dropped = d.U64()
	}
}

// Own implements Owner: Series may alias a pooled frame buffer.
func (m *SeriesFetchResp) Own() { m.Series = detach(m.Series) }

// encodedSizeHint sizes the frame buffer for the history payload.
func (m *SeriesFetchResp) encodedSizeHint() int { return len(m.Series) + len(m.Node) + 32 }

// DecisionLogReq asks a storage node for its scheduler's decision audit
// log. Limit keeps only the trailing N records (0 means all retained);
// TraceID restricts to decisions whose batch involved that trace (0 means
// no filter). Filters compose: trace filter first, then the tail.
type DecisionLogReq struct {
	Limit   uint64
	TraceID uint64
}

func (*DecisionLogReq) Type() MsgType { return MsgDecisionLogReq }

func (m *DecisionLogReq) Encode(e *Encoder) {
	e.PutU64(m.Limit)
	e.PutU64(m.TraceID)
}

func (m *DecisionLogReq) Decode(d *Decoder) {
	m.Limit = d.U64()
	m.TraceID = d.U64()
}

// DecisionLogResp returns the matching records as a JSON array of
// audit.Record — opaque here so the record schema can grow without
// touching the wire format (the HealthResp.Checks pattern). Dropped is
// how many records the node's ring has overwritten since boot: non-zero
// means the log is a suffix of the node's true decision history.
type DecisionLogResp struct {
	Node    string
	Records []byte // JSON-encoded []audit.Record
	Dropped uint64
}

func (*DecisionLogResp) Type() MsgType { return MsgDecisionLogResp }

func (m *DecisionLogResp) Encode(e *Encoder) {
	e.PutString(m.Node)
	e.PutBytes(m.Records)
	e.PutU64(m.Dropped)
}

func (m *DecisionLogResp) Decode(d *Decoder) {
	m.Node = d.String()
	m.Records = d.Bytes()
	m.Dropped = d.U64()
}

// Own implements Owner: Records may alias a pooled frame buffer.
func (m *DecisionLogResp) Own() { m.Records = detach(m.Records) }

// encodedSizeHint sizes the frame buffer for the log payload.
func (m *DecisionLogResp) encodedSizeHint() int { return len(m.Records) + len(m.Node) + 24 }

// HelloReq is the first message a mux-capable client sends on a fresh
// connection: an offer to upgrade from the ordered one-exchange-at-a-time
// framing to the multiplexed framing in mux.go. MaxVersion is the highest
// mux protocol version the client speaks; MaxSegment is the largest
// sub-frame payload, in bytes, it wants the server to emit. Servers that
// predate the handshake fail to decode the unknown type and drop the
// connection; the client then falls back to ordered mode for that peer.
type HelloReq struct {
	MaxVersion uint32
	MaxSegment uint32
}

func (*HelloReq) Type() MsgType { return MsgHelloReq }

func (m *HelloReq) Encode(e *Encoder) {
	e.PutU32(m.MaxVersion)
	e.PutU32(m.MaxSegment)
}

func (m *HelloReq) Decode(d *Decoder) {
	m.MaxVersion = d.U32()
	m.MaxSegment = d.U32()
}

// HelloResp answers a HelloReq. Version 0 declines the upgrade (the
// connection stays in ordered mode); Version >= 1 commits both sides to
// mux framing for every subsequent byte on this connection, with bulk
// frames segmented at MaxSegment.
type HelloResp struct {
	Version    uint32
	MaxSegment uint32
}

func (*HelloResp) Type() MsgType { return MsgHelloResp }

func (m *HelloResp) Encode(e *Encoder) {
	e.PutU32(m.Version)
	e.PutU32(m.MaxSegment)
}

func (m *HelloResp) Decode(d *Decoder) {
	m.Version = d.U32()
	m.MaxSegment = d.U32()
}

// EventFetchReq tails a node's structured event ring: events with
// sequence numbers above SinceSeq (0 means from the oldest retained),
// at or above MinLevel (eventlog severity ordinal; 0 keeps all), at
// most Limit newest events (0 means all matching). dosasctl events
// resumes follow-mode tails by feeding back the previous NextSeq-1.
type EventFetchReq struct {
	SinceSeq uint64
	Limit    uint64
	MinLevel uint8
}

func (*EventFetchReq) Type() MsgType { return MsgEventFetchReq }

func (m *EventFetchReq) Encode(e *Encoder) {
	e.PutU64(m.SinceSeq)
	e.PutU64(m.Limit)
	e.PutU8(m.MinLevel)
}

func (m *EventFetchReq) Decode(d *Decoder) {
	m.SinceSeq = d.U64()
	m.Limit = d.U64()
	m.MinLevel = d.U8()
}

// EventFetchResp returns the matching events as a JSON array of
// eventlog.Event — opaque here so the event schema can grow without
// touching the wire format (the HealthResp.Checks pattern). NextSeq is
// the node's next event sequence number (feed NextSeq-1 back as
// SinceSeq to resume); Dropped is how many events the node's ring has
// overwritten since boot.
type EventFetchResp struct {
	Node    string
	Events  []byte // JSON-encoded []eventlog.Event
	NextSeq uint64
	Dropped uint64
}

func (*EventFetchResp) Type() MsgType { return MsgEventFetchResp }

func (m *EventFetchResp) Encode(e *Encoder) {
	e.PutString(m.Node)
	e.PutBytes(m.Events)
	e.PutU64(m.NextSeq)
	e.PutU64(m.Dropped)
}

func (m *EventFetchResp) Decode(d *Decoder) {
	m.Node = d.String()
	m.Events = d.Bytes()
	m.NextSeq = d.U64()
	m.Dropped = d.U64()
}

// Own implements Owner: Events may alias a pooled frame buffer.
func (m *EventFetchResp) Own() { m.Events = detach(m.Events) }

// encodedSizeHint sizes the frame buffer for the event payload.
func (m *EventFetchResp) encodedSizeHint() int { return len(m.Events) + len(m.Node) + 32 }

// AlertFetchReq asks a node for its SLO engine's current alert table —
// every rule's state, not just firing ones, so operators see what is
// being watched.
type AlertFetchReq struct{}

func (*AlertFetchReq) Type() MsgType { return MsgAlertFetchReq }

func (m *AlertFetchReq) Encode(e *Encoder) {}

func (m *AlertFetchReq) Decode(d *Decoder) {}

// AlertFetchResp returns the node's alerts as a JSON array of
// slo.Alert, opaque for the same schema-growth reason as events.
type AlertFetchResp struct {
	Node   string
	Alerts []byte // JSON-encoded []slo.Alert
}

func (*AlertFetchResp) Type() MsgType { return MsgAlertFetchResp }

func (m *AlertFetchResp) Encode(e *Encoder) {
	e.PutString(m.Node)
	e.PutBytes(m.Alerts)
}

func (m *AlertFetchResp) Decode(d *Decoder) {
	m.Node = d.String()
	m.Alerts = d.Bytes()
}

// Own implements Owner: Alerts may alias a pooled frame buffer.
func (m *AlertFetchResp) Own() { m.Alerts = detach(m.Alerts) }

// encodedSizeHint sizes the frame buffer for the alert payload.
func (m *AlertFetchResp) encodedSizeHint() int { return len(m.Alerts) + len(m.Node) + 16 }

// TenantStatsReq asks a node for its per-tenant resource attribution
// table — who consumed what since the node started.
type TenantStatsReq struct{}

func (*TenantStatsReq) Type() MsgType   { return MsgTenantStatsReq }
func (*TenantStatsReq) Encode(*Encoder) {}
func (*TenantStatsReq) Decode(*Decoder) {}

// TenantStatsResp returns the node's tenant table as a JSON array of
// tenant.Usage, opaque here so the accounting schema can grow without
// touching the wire format. Evicted counts tenants folded out of the
// bounded table since the node started — non-zero means the per-tenant
// rows are a subset and the "(evicted)" aggregate row holds the rest.
type TenantStatsResp struct {
	Node    string
	Evicted uint64
	Usage   []byte // JSON-encoded []tenant.Usage
}

func (*TenantStatsResp) Type() MsgType { return MsgTenantStatsResp }

func (m *TenantStatsResp) Encode(e *Encoder) {
	e.PutString(m.Node)
	e.PutU64(m.Evicted)
	e.PutBytes(m.Usage)
}

func (m *TenantStatsResp) Decode(d *Decoder) {
	m.Node = d.String()
	m.Evicted = d.U64()
	m.Usage = d.Bytes()
}

// Own implements Owner: Usage may alias a pooled frame buffer.
func (m *TenantStatsResp) Own() { m.Usage = detach(m.Usage) }

// encodedSizeHint sizes the frame buffer for the usage payload.
func (m *TenantStatsResp) encodedSizeHint() int { return len(m.Usage) + len(m.Node) + 24 }

// RangeQueryReq asks a node's durable telemetry archive for one series'
// history over a wall-clock window. StepNano, when non-zero, asks the
// node to reduce its answer to per-step bucket means before replying —
// the cheap half of range queries runs next to the data, the cross-node
// aggregation happens at the client.
type RangeQueryReq struct {
	Name     string
	FromNano int64
	ToNano   int64
	StepNano int64
}

func (*RangeQueryReq) Type() MsgType { return MsgRangeQueryReq }

func (m *RangeQueryReq) Encode(e *Encoder) {
	e.PutString(m.Name)
	e.PutI64(m.FromNano)
	e.PutI64(m.ToNano)
	e.PutI64(m.StepNano)
}

func (m *RangeQueryReq) Decode(d *Decoder) {
	m.Name = d.String()
	m.FromNano = d.I64()
	m.ToNano = d.I64()
	m.StepNano = d.I64()
}

// RangeQueryResp returns the archived points as a JSON-encoded
// one-element []telemetry.Series, opaque here like every other
// telemetry payload so the point schema can grow without touching the
// wire format. EarliestNano is the oldest instant the node's archive
// still retains (0 when the node has no archive), so a client can tell
// "no data in window" from "window predates retention". It is a
// trailing optional field: frames from peers predating it still decode.
type RangeQueryResp struct {
	Node         string
	Series       []byte // JSON-encoded []telemetry.Series
	EarliestNano int64
}

func (*RangeQueryResp) Type() MsgType { return MsgRangeQueryResp }

func (m *RangeQueryResp) Encode(e *Encoder) {
	e.PutString(m.Node)
	e.PutBytes(m.Series)
	e.PutI64(m.EarliestNano)
}

func (m *RangeQueryResp) Decode(d *Decoder) {
	m.Node = d.String()
	m.Series = d.Bytes()
	if d.Remaining() > 0 {
		m.EarliestNano = d.I64()
	}
}

// Own implements Owner: Series may alias a pooled frame buffer.
func (m *RangeQueryResp) Own() { m.Series = detach(m.Series) }

// encodedSizeHint sizes the frame buffer for the series payload.
func (m *RangeQueryResp) encodedSizeHint() int { return len(m.Series) + len(m.Node) + 24 }
