// Package daemonflags holds the command-line flags every DOSAS daemon
// shares — the debug endpoint, transport mode, telemetry cadence, and
// the observability plane (event log and SLO rules) — so the five
// binaries register identical names with identical semantics instead of
// five drifting copies.
package daemonflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dosas/internal/eventlog"
	"dosas/internal/openmetrics"
	"dosas/internal/pprofserve"
	"dosas/internal/slo"
	"dosas/internal/telemetry"
	"dosas/internal/tsdb"
)

// Common is the shared flag set. Register the groups a daemon needs,
// call flag.Parse, then use the accessor helpers.
type Common struct {
	// PprofAddr is -pprof-addr: the loopback debug endpoint carrying
	// net/http/pprof and /metrics. Empty disables it.
	PprofAddr string
	// NoMux is -no-mux: decline connection multiplexing.
	NoMux bool
	// TelemetryTick is -telemetry-tick: the sampler interval (0 = the
	// 100 ms default, negative = telemetry disabled).
	TelemetryTick time.Duration
	// SLORulesPath is -slo-rules: a JSON rule file overriding the
	// built-in alert rules. Empty keeps the defaults.
	SLORulesPath string
	// EventCapacity is -event-capacity: each node's in-memory event
	// ring size (0 = the 1024 default).
	EventCapacity int
	// EventDir is -events-dir: where nodes persist events as JSON
	// lines (empty = in-memory only).
	EventDir string
	// EventsMaxBytes is -events-max-bytes: each node's JSONL sink
	// budget, live file plus one rotated predecessor (0 = the 64 MiB
	// default, negative = unbounded).
	EventsMaxBytes int64
	// ArchiveDir is -archive-dir: where nodes persist every telemetry
	// tick as durable, CRC-framed chunk files with downsampling tiers
	// (empty = no archive). Queried by dosasctl query / report.
	ArchiveDir string
	// ArchiveMaxBytes is -archive-max-bytes: each node archive's
	// retention budget across all tiers (0 = the 64 MiB default,
	// negative = unbounded).
	ArchiveMaxBytes int64
	// TenantWeightsSpec is -tenant-weights: per-tenant weighted-fair
	// scheduling weights as "tenant=weight,tenant=weight". Empty means
	// equal weights for everyone.
	TenantWeightsSpec string
	// QoSSlots is -qos-slots: concurrently admitted requests per node
	// gate (0 = the built-in default).
	QoSSlots int
	// NoQoS is -no-qos: disable the weighted-fair admission gates.
	NoQoS bool
	// HedgeAfter is -hedge-after: the client-side hedged-read fallback
	// trigger on replicated files (0 = hedging disabled).
	HedgeAfter time.Duration
}

// RegisterBase installs the flags every binary shares: the debug
// endpoint and the transport mode.
func (c *Common) RegisterBase(fs *flag.FlagSet) {
	fs.StringVar(&c.PprofAddr, "pprof-addr", "",
		"serve net/http/pprof and /metrics on this loopback address (e.g. 127.0.0.1:6060; empty = disabled)")
	fs.BoolVar(&c.NoMux, "no-mux", false,
		"decline connection multiplexing; use ordered per-exchange RPC only")
}

// RegisterTelemetry installs -telemetry-tick.
func (c *Common) RegisterTelemetry(fs *flag.FlagSet) {
	fs.DurationVar(&c.TelemetryTick, "telemetry-tick", 0,
		"telemetry sampling interval (0 = 100ms default, negative = disabled)")
}

// RegisterObservability installs the event-log and SLO flags.
func (c *Common) RegisterObservability(fs *flag.FlagSet) {
	fs.StringVar(&c.SLORulesPath, "slo-rules", "",
		"JSON alert-rule file overriding the built-in SLO rules")
	fs.IntVar(&c.EventCapacity, "event-capacity", 0,
		"per-node in-memory event ring size (0 = 1024 default)")
	fs.StringVar(&c.EventDir, "events-dir", "",
		"persist per-node events as JSON lines under this directory (empty = in-memory only)")
	fs.Int64Var(&c.EventsMaxBytes, "events-max-bytes", 0,
		"per-node JSONL event sink budget, live file plus one rotation (0 = 64MiB default, negative = unbounded)")
	fs.StringVar(&c.ArchiveDir, "archive-dir", "",
		"persist per-node telemetry ticks as a durable archive under this directory (empty = disabled)")
	fs.Int64Var(&c.ArchiveMaxBytes, "archive-max-bytes", 0,
		"per-node telemetry archive retention budget (0 = 64MiB default, negative = unbounded)")
}

// RegisterQoS installs the server-side isolation flags: the per-tenant
// scheduling weights and the admission-gate knobs.
func (c *Common) RegisterQoS(fs *flag.FlagSet) {
	fs.StringVar(&c.TenantWeightsSpec, "tenant-weights", "",
		`per-tenant weighted-fair scheduling weights, "tenant=weight,tenant=weight" (empty = equal weights)`)
	fs.IntVar(&c.QoSSlots, "qos-slots", 0,
		"concurrently admitted requests per node admission gate (0 = built-in default)")
	fs.BoolVar(&c.NoQoS, "no-qos", false,
		"disable the weighted-fair admission gates (requests run in arrival order)")
}

// RegisterHedge installs the client-side -hedge-after flag.
func (c *Common) RegisterHedge(fs *flag.FlagSet) {
	fs.DurationVar(&c.HedgeAfter, "hedge-after", 0,
		"duplicate a replicated read to the next-best replica after this delay and cancel the loser (0 = disabled)")
}

// TenantWeights parses -tenant-weights into the weight map consumed by
// the admission gates. Nil (equal weights) for the empty spec.
func (c *Common) TenantWeights() (map[string]float64, error) {
	return ParseTenantWeights(c.TenantWeightsSpec)
}

// ParseTenantWeights parses a "tenant=weight,tenant=weight" spec.
func ParseTenantWeights(spec string) (map[string]float64, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	m := make(map[string]float64)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant-weights: %q is not tenant=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("tenant-weights: %q needs a positive weight", part)
		}
		m[name] = w
	}
	if len(m) == 0 {
		return nil, nil
	}
	return m, nil
}

// Sampler builds a telemetry sampler per the -telemetry-tick
// convention: zero means the default interval, negative disables.
func (c *Common) Sampler() *telemetry.Sampler {
	if c.TelemetryTick < 0 {
		return nil
	}
	s := telemetry.NewSampler(telemetry.Config{Interval: c.TelemetryTick})
	// Every daemon's sampler carries the Go runtime health series
	// (goroutines, heap in use, GC pause p99) alongside its own probes.
	telemetry.RegisterRuntimeProbes(s)
	return s
}

// EventLog builds one node's structured event log per the event flags:
// ring capacity, optional JSONL sink under -events-dir with the
// -events-max-bytes rotation budget, and a mirror writer (typically
// os.Stderr so the daemon console keeps its commentary).
func (c *Common) EventLog(node string, mirror io.Writer) (*eventlog.Log, error) {
	cfg := eventlog.Config{Node: node, Capacity: c.EventCapacity, Mirror: mirror, MaxBytes: c.EventsMaxBytes}
	if c.EventDir != "" {
		if err := os.MkdirAll(c.EventDir, 0o755); err != nil {
			return nil, err
		}
		cfg.Path = filepath.Join(c.EventDir, node+".events.jsonl")
	}
	return eventlog.New(cfg)
}

// Archive opens node's durable telemetry archive under -archive-dir
// and hooks its appender to the sampler's tick, so every sample lands
// on disk as it lands in the ring. Nil (archive disabled) when
// -archive-dir is unset or telemetry is off. Append failures are
// reported once to the event log rather than per tick.
func (c *Common) Archive(node string, tele *telemetry.Sampler, ev *eventlog.Log) (*tsdb.Archive, error) {
	if c.ArchiveDir == "" || tele == nil {
		return nil, nil
	}
	a, err := tsdb.Open(tsdb.Config{
		Dir:      filepath.Join(c.ArchiveDir, node),
		MaxBytes: c.ArchiveMaxBytes,
	})
	if err != nil {
		return nil, err
	}
	var failed bool
	tele.OnSamples(func(wallNano, monoNano int64, samples []telemetry.Sample) {
		if err := a.Append(wallNano, monoNano, samples); err != nil && !failed {
			failed = true
			ev.Warn("tsdb", "archive append failed", "err", err.Error())
		}
	})
	return a, nil
}

// Rules resolves -slo-rules: the file's validated rules when given, the
// built-in defaults otherwise.
func (c *Common) Rules() ([]slo.Rule, error) {
	if c.SLORulesPath == "" {
		return slo.DefaultRules(), nil
	}
	return slo.LoadRules(c.SLORulesPath)
}

// ServeDebug starts the -pprof-addr endpoint with /metrics rendering
// sources, returning the bound address ("" when disabled). sources is
// re-evaluated per scrape, so gauges and alert states stay live.
func (c *Common) ServeDebug(sources func() []openmetrics.Source) (string, error) {
	if c.PprofAddr == "" {
		return "", nil
	}
	extra := []pprofserve.Endpoint{}
	if sources != nil {
		extra = append(extra, pprofserve.Endpoint{
			Path: "/metrics", Handler: openmetrics.Handler(sources),
		})
	}
	return pprofserve.Serve(c.PprofAddr, extra...)
}
