// Package daemonflags holds the command-line flags every DOSAS daemon
// shares — the debug endpoint, transport mode, telemetry cadence, and
// the observability plane (event log and SLO rules) — so the five
// binaries register identical names with identical semantics instead of
// five drifting copies.
package daemonflags

import (
	"flag"
	"time"

	"dosas/internal/openmetrics"
	"dosas/internal/pprofserve"
	"dosas/internal/slo"
	"dosas/internal/telemetry"
)

// Common is the shared flag set. Register the groups a daemon needs,
// call flag.Parse, then use the accessor helpers.
type Common struct {
	// PprofAddr is -pprof-addr: the loopback debug endpoint carrying
	// net/http/pprof and /metrics. Empty disables it.
	PprofAddr string
	// NoMux is -no-mux: decline connection multiplexing.
	NoMux bool
	// TelemetryTick is -telemetry-tick: the sampler interval (0 = the
	// 100 ms default, negative = telemetry disabled).
	TelemetryTick time.Duration
	// SLORulesPath is -slo-rules: a JSON rule file overriding the
	// built-in alert rules. Empty keeps the defaults.
	SLORulesPath string
	// EventCapacity is -event-capacity: each node's in-memory event
	// ring size (0 = the 1024 default).
	EventCapacity int
	// EventDir is -events-dir: where nodes persist events as JSON
	// lines (empty = in-memory only).
	EventDir string
}

// RegisterBase installs the flags every binary shares: the debug
// endpoint and the transport mode.
func (c *Common) RegisterBase(fs *flag.FlagSet) {
	fs.StringVar(&c.PprofAddr, "pprof-addr", "",
		"serve net/http/pprof and /metrics on this loopback address (e.g. 127.0.0.1:6060; empty = disabled)")
	fs.BoolVar(&c.NoMux, "no-mux", false,
		"decline connection multiplexing; use ordered per-exchange RPC only")
}

// RegisterTelemetry installs -telemetry-tick.
func (c *Common) RegisterTelemetry(fs *flag.FlagSet) {
	fs.DurationVar(&c.TelemetryTick, "telemetry-tick", 0,
		"telemetry sampling interval (0 = 100ms default, negative = disabled)")
}

// RegisterObservability installs the event-log and SLO flags.
func (c *Common) RegisterObservability(fs *flag.FlagSet) {
	fs.StringVar(&c.SLORulesPath, "slo-rules", "",
		"JSON alert-rule file overriding the built-in SLO rules")
	fs.IntVar(&c.EventCapacity, "event-capacity", 0,
		"per-node in-memory event ring size (0 = 1024 default)")
	fs.StringVar(&c.EventDir, "events-dir", "",
		"persist per-node events as JSON lines under this directory (empty = in-memory only)")
}

// Sampler builds a telemetry sampler per the -telemetry-tick
// convention: zero means the default interval, negative disables.
func (c *Common) Sampler() *telemetry.Sampler {
	if c.TelemetryTick < 0 {
		return nil
	}
	return telemetry.NewSampler(telemetry.Config{Interval: c.TelemetryTick})
}

// Rules resolves -slo-rules: the file's validated rules when given, the
// built-in defaults otherwise.
func (c *Common) Rules() ([]slo.Rule, error) {
	if c.SLORulesPath == "" {
		return slo.DefaultRules(), nil
	}
	return slo.LoadRules(c.SLORulesPath)
}

// ServeDebug starts the -pprof-addr endpoint with /metrics rendering
// sources, returning the bound address ("" when disabled). sources is
// re-evaluated per scrape, so gauges and alert states stay live.
func (c *Common) ServeDebug(sources func() []openmetrics.Source) (string, error) {
	if c.PprofAddr == "" {
		return "", nil
	}
	extra := []pprofserve.Endpoint{}
	if sources != nil {
		extra = append(extra, pprofserve.Endpoint{
			Path: "/metrics", Handler: openmetrics.Handler(sources),
		})
	}
	return pprofserve.Serve(c.PprofAddr, extra...)
}
