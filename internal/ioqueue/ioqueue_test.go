package ioqueue

import (
	"sync"
	"testing"
	"time"

	"dosas/internal/tenant"
)

func TestFIFOWithinClass(t *testing.T) {
	q := New()
	for i := 1; i <= 5; i++ {
		if err := q.Push(Item{ID: uint64(i), Class: Active}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 5; i++ {
		it, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if it.ID != uint64(i) {
			t.Fatalf("pop %d: got id %d", i, it.ID)
		}
	}
}

func TestNormalPriorityOverActive(t *testing.T) {
	q := New()
	q.Push(Item{ID: 1, Class: Active})
	q.Push(Item{ID: 2, Class: Normal})
	q.Push(Item{ID: 3, Class: Active})
	q.Push(Item{ID: 4, Class: Normal})
	var order []uint64
	for i := 0; i < 4; i++ {
		it, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, it.ID)
	}
	want := []uint64{2, 4, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStatsTrackBytesAndLengths(t *testing.T) {
	q := New()
	q.Push(Item{ID: 1, Class: Active, Bytes: 100})
	q.Push(Item{ID: 2, Class: Normal, Bytes: 7})
	q.Push(Item{ID: 3, Class: Active, Bytes: 50})
	st := q.Stats()
	if st.ActiveLen != 2 || st.NormalLen != 1 || st.ActiveBytes != 150 || st.NormalBytes != 7 {
		t.Fatalf("stats = %+v", st)
	}
	q.Pop() // drains the normal item first
	st = q.Stats()
	if st.NormalLen != 0 || st.NormalBytes != 0 || st.ActiveBytes != 150 {
		t.Fatalf("stats after pop = %+v", st)
	}
}

func TestRemove(t *testing.T) {
	q := New()
	q.Push(Item{ID: 1, Class: Active, Bytes: 10})
	q.Push(Item{ID: 2, Class: Active, Bytes: 20})
	q.Push(Item{ID: 3, Class: Active, Bytes: 30})
	it, ok := q.Remove(2)
	if !ok || it.Bytes != 20 {
		t.Fatalf("remove = %+v, %v", it, ok)
	}
	if _, ok := q.Remove(2); ok {
		t.Fatal("double remove succeeded")
	}
	if st := q.Stats(); st.ActiveLen != 2 || st.ActiveBytes != 40 {
		t.Fatalf("stats = %+v", st)
	}
	a, _ := q.Pop()
	b, _ := q.Pop()
	if a.ID != 1 || b.ID != 3 {
		t.Fatalf("order after remove: %d, %d", a.ID, b.ID)
	}
}

func TestDrainActive(t *testing.T) {
	q := New()
	q.Push(Item{ID: 1, Class: Active})
	q.Push(Item{ID: 2, Class: Normal})
	q.Push(Item{ID: 3, Class: Active})
	items := q.DrainActive()
	if len(items) != 2 || items[0].ID != 1 || items[1].ID != 3 {
		t.Fatalf("drained = %+v", items)
	}
	if st := q.Stats(); st.ActiveLen != 0 || st.NormalLen != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPendingActiveSnapshot(t *testing.T) {
	q := New()
	q.Push(Item{ID: 5, Class: Active, Op: "sum8"})
	q.Push(Item{ID: 6, Class: Active, Op: "gaussian2d"})
	snap := q.PendingActive()
	if len(snap) != 2 || snap[0].ID != 5 || snap[1].Op != "gaussian2d" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Snapshot must not consume.
	if q.Len() != 2 {
		t.Fatalf("len = %d after snapshot", q.Len())
	}
}

func TestPopBlocksUntilPush(t *testing.T) {
	q := New()
	done := make(chan Item, 1)
	go func() {
		it, err := q.Pop()
		if err == nil {
			done <- it
		}
	}()
	select {
	case <-done:
		t.Fatal("Pop returned before Push")
	case <-time.After(20 * time.Millisecond):
	}
	q.Push(Item{ID: 9, Class: Active})
	select {
	case it := <-done:
		if it.ID != 9 {
			t.Fatalf("got id %d", it.ID)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop never woke")
	}
}

func TestCloseWakesPoppers(t *testing.T) {
	q := New()
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := q.Pop()
			errs <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	}
	if err := q.Push(Item{ID: 1}); err != ErrClosed {
		t.Errorf("push after close = %v", err)
	}
}

func TestTryPop(t *testing.T) {
	q := New()
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	q.Push(Item{ID: 1, Class: Active})
	it, ok := q.TryPop()
	if !ok || it.ID != 1 {
		t.Fatalf("TryPop = %+v, %v", it, ok)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New()
	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				cls := Normal
				if i%2 == 0 {
					cls = Active
				}
				q.Push(Item{ID: uint64(p*perProducer + i), Class: cls, Bytes: 1})
			}
		}(p)
	}
	var consumed sync.WaitGroup
	total := producers * perProducer
	seen := make(chan uint64, total)
	for c := 0; c < 4; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				it, err := q.Pop()
				if err != nil {
					return
				}
				seen <- it.ID
			}
		}()
	}
	wg.Wait()
	got := make(map[uint64]bool, total)
	for i := 0; i < total; i++ {
		got[<-seen] = true
	}
	q.Close()
	consumed.Wait()
	if len(got) != total {
		t.Fatalf("consumed %d unique items, want %d", len(got), total)
	}
}

func TestTenantAccounting(t *testing.T) {
	q := New()
	now := time.Unix(100, 0)
	q.now = func() time.Time { return now }
	tab := tenant.NewTable(8)
	q.SetTenants(tab)

	q.Push(Item{ID: 1, Class: Active, Tenant: "a"})
	q.Push(Item{ID: 2, Class: Active, Tenant: "a"})
	q.Push(Item{ID: 3, Class: Normal}) // default tenant
	rows := tab.Snapshot()
	if len(rows) != 2 || rows[0].Tenant != "a" || rows[0].Queued != 2 || rows[1].Queued != 1 {
		t.Fatalf("after push: %+v", rows)
	}

	// Pop after 5ms: queued gauge drops, wait accrues to the right tenant.
	now = now.Add(5 * time.Millisecond)
	it, _ := q.TryPop() // normal first → default tenant
	if it.ID != 3 {
		t.Fatalf("popped %d, want 3", it.ID)
	}
	rows = tab.Snapshot()
	if rows[1].Queued != 0 || rows[1].QueueWaitNanos != uint64(5*time.Millisecond) {
		t.Fatalf("default row after pop: %+v", rows[1])
	}

	// Remove and DrainActive also settle the gauge and accrue wait.
	now = now.Add(5 * time.Millisecond)
	if _, ok := q.Remove(1); !ok {
		t.Fatal("remove failed")
	}
	if drained := q.DrainActive(); len(drained) != 1 || drained[0].ID != 2 {
		t.Fatalf("drained = %+v", drained)
	}
	rows = tab.Snapshot()
	if rows[0].Queued != 0 || rows[0].QueueWaitNanos != uint64(20*time.Millisecond) {
		t.Fatalf("tenant a after remove+drain: %+v", rows[0])
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty: %d", q.Len())
	}
}

func TestTenantAccountingDisabled(t *testing.T) {
	// With no table attached, the queue must behave exactly as before.
	q := New()
	q.Push(Item{ID: 1, Class: Active, Tenant: "a"})
	if it, ok := q.TryPop(); !ok || it.ID != 1 {
		t.Fatalf("pop = %+v, %v", it, ok)
	}
}

// Deque compaction must not corrupt order after many push/pop cycles.
func TestDequeCompaction(t *testing.T) {
	q := New()
	next := uint64(1)
	popped := uint64(1)
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			q.Push(Item{ID: next, Class: Active})
			next++
		}
		for i := 0; i < 15; i++ {
			it, err := q.Pop()
			if err != nil {
				t.Fatal(err)
			}
			if it.ID != popped {
				t.Fatalf("round %d: got %d, want %d", round, it.ID, popped)
			}
			popped++
		}
	}
}

// --- WDRR tests ---

// Two tenants with equal weights and equal item sizes must interleave
// instead of draining in arrival order.
func TestWDRRInterleavesTenants(t *testing.T) {
	q := New()
	q.SetQuantum(100)
	for i := 0; i < 4; i++ {
		q.Push(Item{ID: uint64(i + 1), Class: Active, Tenant: "a", Bytes: 100})
	}
	for i := 0; i < 4; i++ {
		q.Push(Item{ID: uint64(i + 11), Class: Active, Tenant: "b", Bytes: 100})
	}
	var tenants []string
	for i := 0; i < 8; i++ {
		it, ok := q.TryPop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		tenants = append(tenants, it.Tenant)
	}
	// A strict FIFO would give aaaabbbb; WDRR must alternate service.
	var aRun int
	for _, tn := range tenants {
		if tn == "a" {
			aRun++
			if aRun >= 4 {
				t.Fatalf("tenant a served 4 in a row: %v", tenants)
			}
		} else {
			aRun = 0
		}
	}
}

// A tenant with weight 3 must receive about 3x the bytes of a weight-1
// tenant over a contended drain.
func TestWDRRWeights(t *testing.T) {
	q := New()
	q.SetQuantum(64 << 10)
	q.SetWeights(map[string]float64{"big": 3, "small": 1})
	const itemSize = 64 << 10
	for i := 0; i < 64; i++ {
		q.Push(Item{ID: uint64(1000 + i), Class: Normal, Tenant: "big", Bytes: itemSize})
		q.Push(Item{ID: uint64(2000 + i), Class: Normal, Tenant: "small", Bytes: itemSize})
	}
	// Drain the first half of the backlog and count by tenant.
	counts := map[string]int{}
	for i := 0; i < 64; i++ {
		it, ok := q.TryPop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		counts[it.Tenant]++
	}
	if counts["big"] < 40 || counts["big"] > 56 {
		t.Fatalf("weight-3 tenant got %d of 64 slots, want ~48 (3:1)", counts["big"])
	}
}

// Meta class drains after Normal but before Active.
func TestMetaClassOrdering(t *testing.T) {
	q := New()
	q.Push(Item{ID: 1, Class: Active})
	q.Push(Item{ID: 2, Class: Meta})
	q.Push(Item{ID: 3, Class: Normal})
	var order []uint64
	for i := 0; i < 3; i++ {
		it, _ := q.TryPop()
		order = append(order, it.ID)
	}
	if order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("order = %v, want [3 2 1]", order)
	}
	st := q.Stats()
	if st.MetaLen != 0 || st.Throttled != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Zero-byte metadata ops still consume credit (the min-cost floor), so a
// stat storm from one tenant cannot starve another tenant's meta ops.
func TestMetaStormFairness(t *testing.T) {
	q := New()
	for i := 0; i < 100; i++ {
		q.Push(Item{ID: uint64(i + 1), Class: Meta, Tenant: "storm"})
	}
	q.Push(Item{ID: 999, Class: Meta, Tenant: "victim"})
	// The victim's single op must surface within roughly one round of
	// credit (quantum/minCost items), not behind all 100 storm ops.
	limit := int(2*DefaultQuantum/minCost) + 2
	for i := 0; i < limit; i++ {
		it, ok := q.TryPop()
		if !ok {
			t.Fatal("queue empty early")
		}
		if it.ID == 999 {
			return
		}
	}
	t.Fatalf("victim meta op not served within %d pops", limit)
}

// Throttled and DeficitBytes surface via Stats when shaping bites.
func TestQoSStats(t *testing.T) {
	q := New()
	q.SetQuantum(10)
	q.Push(Item{ID: 1, Class: Active, Tenant: "a", Bytes: 100 << 10})
	q.Push(Item{ID: 2, Class: Active, Tenant: "b", Bytes: 100 << 10})
	for i := 0; i < 2; i++ {
		if _, ok := q.TryPop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
	if st := q.Stats(); st.Throttled == 0 {
		t.Fatalf("expected throttle events, stats = %+v", st)
	}
	// DeficitBytes reflects banked credit while tenants are queued.
	q2 := New()
	q2.SetQuantum(1 << 20)
	q2.Push(Item{ID: 1, Class: Normal, Tenant: "a", Bytes: 4 << 20})
	q2.Push(Item{ID: 2, Class: Normal, Tenant: "b", Bytes: 4 << 20})
	if st := q2.Stats(); st.Tenants != 2 {
		t.Fatalf("tenants = %d, want 2", st.Tenants)
	}
}

// An idle tenant must not bank unbounded credit: after its queue empties
// it rejoins with a fresh bucket.
func TestNoCreditBanking(t *testing.T) {
	q := New()
	q.SetQuantum(100)
	q.Push(Item{ID: 1, Class: Active, Tenant: "a", Bytes: 100})
	if it, _ := q.TryPop(); it.ID != 1 {
		t.Fatal("pop failed")
	}
	if st := q.Stats(); st.DeficitBytes != 0 {
		t.Fatalf("credit banked across idle: %+v", st)
	}
}

// PendingActive keeps global arrival order across tenant buckets.
func TestSnapshotArrivalOrder(t *testing.T) {
	q := New()
	q.Push(Item{ID: 1, Class: Active, Tenant: "b"})
	q.Push(Item{ID: 2, Class: Active, Tenant: "a"})
	q.Push(Item{ID: 3, Class: Active, Tenant: "b"})
	snap := q.PendingActive()
	if len(snap) != 3 || snap[0].ID != 1 || snap[1].ID != 2 || snap[2].ID != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// Remove out of a multi-tenant ring keeps counters consistent.
func TestRemoveMultiTenant(t *testing.T) {
	q := New()
	q.Push(Item{ID: 1, Class: Active, Tenant: "a", Bytes: 10})
	q.Push(Item{ID: 2, Class: Active, Tenant: "b", Bytes: 20})
	q.Push(Item{ID: 3, Class: Active, Tenant: "a", Bytes: 30})
	if it, ok := q.Remove(2); !ok || it.Bytes != 20 {
		t.Fatalf("remove = %+v %v", it, ok)
	}
	if st := q.Stats(); st.ActiveLen != 2 || st.ActiveBytes != 40 || st.Tenants != 1 {
		t.Fatalf("stats = %+v", st)
	}
	ids := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		it, _ := q.TryPop()
		ids[it.ID] = true
	}
	if !ids[1] || !ids[3] {
		t.Fatalf("ids = %v", ids)
	}
}
