// Package ioqueue provides the two-class I/O request queue a DOSAS storage
// node schedules from. Normal I/O takes priority over active I/O — the
// paper's rule "when [the storage node] is fully engaged with I/O services,
// normal I/O will take the priority" — and the queue exposes the aggregate
// statistics (lengths, queued bytes) that the Contention Estimator probes.
package ioqueue

import (
	"errors"
	"sync"
	"time"

	"dosas/internal/tenant"
)

// Class separates normal from active I/O.
type Class uint8

// Request classes.
const (
	Normal Class = iota
	Active
)

// String returns "normal" or "active".
func (c Class) String() string {
	if c == Active {
		return "active"
	}
	return "normal"
}

// Item is one queued request.
type Item struct {
	ID      uint64
	Class   Class
	Op      string // kernel name for active requests
	Bytes   uint64 // request data size d_i
	Enqueue time.Time
	// Tenant attributes the item's queue time to a tenant ("" = default).
	Tenant string
	// Payload carries the scheduler-opaque request context (the runtime
	// stores its task struct here).
	Payload any
}

// ErrClosed is returned by Pop after Close.
var ErrClosed = errors.New("ioqueue: closed")

// Queue is a blocking two-class FIFO. Pop always drains Normal items
// before Active items; within a class, arrival order is preserved.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	normal  deque
	active  deque
	bytes   [2]uint64
	closed  bool
	now     func() time.Time
	tenants *tenant.Table
}

// New returns an empty queue.
func New() *Queue {
	q := &Queue{now: time.Now}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// SetTenants attaches the node's tenant table: every push raises the
// item's per-tenant queued gauge, and every dequeue (pop, remove, or
// drain) lowers it and accrues the item's queue wait. Nil (the default)
// disables attribution.
func (q *Queue) SetTenants(t *tenant.Table) {
	q.mu.Lock()
	q.tenants = t
	q.mu.Unlock()
}

// accountPush is called with q.mu held after item.Enqueue is stamped.
func (q *Queue) accountPush(item Item) {
	q.tenants.Account(item.Tenant, func(s *tenant.Stats) { s.Queued++ })
}

// accountPop is called with q.mu held when an item leaves the queue for
// any reason.
func (q *Queue) accountPop(item Item) {
	if q.tenants == nil {
		return
	}
	wait := q.now().Sub(item.Enqueue)
	if wait < 0 {
		wait = 0
	}
	q.tenants.Account(item.Tenant, func(s *tenant.Stats) {
		s.Queued--
		s.QueueWaitNanos += uint64(wait)
	})
}

// Push enqueues item. It returns ErrClosed after Close.
func (q *Queue) Push(item Item) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if item.Enqueue.IsZero() {
		item.Enqueue = q.now()
	}
	if item.Class == Normal {
		q.normal.push(item)
	} else {
		q.active.push(item)
	}
	q.bytes[item.Class] += item.Bytes
	q.accountPush(item)
	q.cond.Signal()
	return nil
}

// Pop blocks until an item is available (normal first) or the queue is
// closed and drained.
func (q *Queue) Pop() (Item, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if it, ok := q.popLocked(); ok {
			return it, nil
		}
		if q.closed {
			return Item{}, ErrClosed
		}
		q.cond.Wait()
	}
}

// TryPop returns immediately with ok=false when the queue is empty.
func (q *Queue) TryPop() (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

func (q *Queue) popLocked() (Item, bool) {
	if it, ok := q.normal.pop(); ok {
		q.bytes[Normal] -= it.Bytes
		q.accountPop(it)
		return it, true
	}
	if it, ok := q.active.pop(); ok {
		q.bytes[Active] -= it.Bytes
		q.accountPop(it)
		return it, true
	}
	return Item{}, false
}

// Remove withdraws the queued item with the given id (any class). It
// reports whether the item was found.
func (q *Queue) Remove(id uint64) (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if it, ok := q.normal.remove(id); ok {
		q.bytes[Normal] -= it.Bytes
		q.accountPop(it)
		return it, true
	}
	if it, ok := q.active.remove(id); ok {
		q.bytes[Active] -= it.Bytes
		q.accountPop(it)
		return it, true
	}
	return Item{}, false
}

// DrainActive removes and returns all queued active items, oldest first.
// The runtime uses it when the policy flips to bounce-everything.
func (q *Queue) DrainActive() []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	var items []Item
	for {
		it, ok := q.active.pop()
		if !ok {
			break
		}
		q.bytes[Active] -= it.Bytes
		q.accountPop(it)
		items = append(items, it)
	}
	return items
}

// Stats is a snapshot of queue occupancy.
type Stats struct {
	NormalLen   int
	ActiveLen   int
	NormalBytes uint64
	ActiveBytes uint64
}

// Stats returns current occupancy.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		NormalLen:   q.normal.len(),
		ActiveLen:   q.active.len(),
		NormalBytes: q.bytes[Normal],
		ActiveBytes: q.bytes[Active],
	}
}

// PendingActive returns copies of all queued active items in arrival
// order, without removing them — the scheduler's view of the active queue.
func (q *Queue) PendingActive() []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.active.snapshot()
}

// Len returns the total number of queued items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.normal.len() + q.active.len()
}

// Close wakes all blocked Pops; queued items can still be drained.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// deque is a slice-backed FIFO with O(1) amortised push/pop and O(n)
// removal by id (rare: cancellations and policy flips only).
type deque struct {
	items []Item
	head  int
}

func (d *deque) push(it Item) { d.items = append(d.items, it) }

func (d *deque) pop() (Item, bool) {
	if d.head >= len(d.items) {
		return Item{}, false
	}
	it := d.items[d.head]
	d.items[d.head] = Item{} // release payload references
	d.head++
	if d.head > 64 && d.head*2 >= len(d.items) {
		d.items = append(d.items[:0], d.items[d.head:]...)
		d.head = 0
	}
	return it, true
}

func (d *deque) remove(id uint64) (Item, bool) {
	for i := d.head; i < len(d.items); i++ {
		if d.items[i].ID == id {
			it := d.items[i]
			d.items = append(d.items[:i], d.items[i+1:]...)
			return it, true
		}
	}
	return Item{}, false
}

func (d *deque) len() int { return len(d.items) - d.head }

func (d *deque) snapshot() []Item {
	out := make([]Item, d.len())
	copy(out, d.items[d.head:])
	return out
}
