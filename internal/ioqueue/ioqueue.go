// Package ioqueue provides the multi-class I/O request queue a DOSAS
// storage node schedules from. Normal I/O takes priority over active I/O —
// the paper's rule "when [the storage node] is fully engaged with I/O
// services, normal I/O will take the priority" — with metadata operations
// in a class of their own between the two, and the queue exposes the
// aggregate statistics (lengths, queued bytes) that the Contention
// Estimator probes.
//
// Within each class the queue is not FIFO but weighted deficit round robin
// across tenants: every queued tenant holds a token bucket that a
// round-robin pass refills with quantum×weight bytes of credit (capped at
// two refills, so an idle tenant cannot bank unbounded burst), and a
// tenant's head item is served only when its bucket covers the item's
// cost. One aggressor tenant therefore cannot push another tenant's
// requests arbitrarily deep into the queue: the victim's head is at most
// one round-robin pass away from credit. The scheduler is work-conserving
// — credit shapes the order requests drain, never the rate when only one
// tenant is queued.
package ioqueue

import (
	"errors"
	"sort"
	"sync"
	"time"

	"dosas/internal/tenant"
)

// Class separates normal I/O, metadata operations, and active I/O.
type Class uint8

// Request classes, in drain-priority order: normal data I/O first (the
// paper's rule), then metadata operations (small and latency-sensitive,
// but never allowed to displace data I/O the applications are blocked on),
// then active kernels. The separate Meta class means a stat storm queues
// against other metadata ops — weighted-fair within the class — instead of
// riding the normal class and starving the namespace behind megabytes of
// bulk data.
const (
	Normal Class = iota
	Active
	Meta

	// NumClasses counts the classes above.
	NumClasses = 3
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Active:
		return "active"
	case Meta:
		return "meta"
	default:
		return "normal"
	}
}

// drainOrder is the strict priority order Pop drains classes in.
var drainOrder = [NumClasses]Class{Normal, Meta, Active}

// Item is one queued request.
type Item struct {
	ID      uint64
	Class   Class
	Op      string // kernel name for active requests
	Bytes   uint64 // request data size d_i
	Enqueue time.Time
	// Tenant attributes the item's queue time to a tenant ("" = default)
	// and selects the deficit-round-robin bucket it drains from.
	Tenant string
	// Payload carries the scheduler-opaque request context (the runtime
	// stores its task struct here).
	Payload any

	// seq is the queue-global arrival stamp; it reconstructs arrival
	// order across per-tenant buckets for snapshots and drains.
	seq uint64
}

// ErrClosed is returned by Pop after Close.
var ErrClosed = errors.New("ioqueue: closed")

// DefaultQuantum is the per-round credit grant in bytes for a tenant of
// weight 1. A bulk chunk larger than the quantum simply takes several
// rounds of credit — progress is guaranteed because the bucket cap never
// drops below the head item's cost.
const DefaultQuantum = 256 << 10

// minCost is the floor each item is charged against its tenant's bucket.
// Zero-byte metadata operations still consume credit, so a stat storm
// drains at a bounded per-round rate instead of for free.
const minCost = 4 << 10

func itemCost(it Item) uint64 {
	if it.Bytes < minCost {
		return minCost
	}
	return it.Bytes
}

// Queue is a blocking multi-class queue: strict priority across classes,
// weighted deficit round robin across tenants within a class.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	classes [NumClasses]classQueue
	nextSeq uint64
	closed  bool
	now     func() time.Time
	tenants *tenant.Table

	quantum uint64
	weights map[string]float64

	throttled uint64 // cumulative head-deferred-for-credit events
}

// New returns an empty queue with equal tenant weights.
func New() *Queue {
	q := &Queue{now: time.Now, quantum: DefaultQuantum}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// SetWeights installs per-tenant scheduling weights. A tenant absent from
// the map (and the default "" tenant, unless listed) gets weight 1; a
// tenant with weight w receives w× the per-round credit of a weight-1
// tenant. Non-positive weights are treated as 1. The map is copied.
func (q *Queue) SetWeights(w map[string]float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(w) == 0 {
		q.weights = nil
		return
	}
	q.weights = make(map[string]float64, len(w))
	for k, v := range w {
		q.weights[k] = v
	}
}

// SetQuantum overrides the per-round credit grant (bytes per weight-1
// tenant per round-robin pass). Non-positive restores the default.
func (q *Queue) SetQuantum(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n <= 0 {
		q.quantum = DefaultQuantum
	} else {
		q.quantum = uint64(n)
	}
}

// grantFor returns one round's credit for a tenant, honouring its weight.
func (q *Queue) grantFor(name string) uint64 {
	w := 1.0
	if q.weights != nil {
		if v, ok := q.weights[name]; ok && v > 0 {
			w = v
		}
	}
	g := uint64(float64(q.quantum) * w)
	if g == 0 {
		g = 1
	}
	return g
}

// SetTenants attaches the node's tenant table: every push raises the
// item's per-tenant queued gauge, and every dequeue (pop, remove, or
// drain) lowers it and accrues the item's queue wait. Nil (the default)
// disables attribution.
func (q *Queue) SetTenants(t *tenant.Table) {
	q.mu.Lock()
	q.tenants = t
	q.mu.Unlock()
}

// accountPush is called with q.mu held after item.Enqueue is stamped.
func (q *Queue) accountPush(item Item) {
	q.tenants.Account(item.Tenant, func(s *tenant.Stats) { s.Queued++ })
}

// accountPop is called with q.mu held when an item leaves the queue for
// any reason.
func (q *Queue) accountPop(item Item) {
	if q.tenants == nil {
		return
	}
	wait := q.now().Sub(item.Enqueue)
	if wait < 0 {
		wait = 0
	}
	q.tenants.Account(item.Tenant, func(s *tenant.Stats) {
		s.Queued--
		s.QueueWaitNanos += uint64(wait)
	})
}

// Push enqueues item. It returns ErrClosed after Close.
func (q *Queue) Push(item Item) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if item.Enqueue.IsZero() {
		item.Enqueue = q.now()
	}
	q.nextSeq++
	item.seq = q.nextSeq
	q.classes[item.class()].push(item)
	q.accountPush(item)
	q.cond.Signal()
	return nil
}

// class clamps out-of-range class values to Normal, matching the old
// two-slot behaviour for any constant-abusing caller.
func (it Item) class() Class {
	if it.Class >= NumClasses {
		return Normal
	}
	return it.Class
}

// Pop blocks until an item is available (normal first, then metadata,
// then active) or the queue is closed and drained.
func (q *Queue) Pop() (Item, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if it, ok := q.popLocked(); ok {
			return it, nil
		}
		if q.closed {
			return Item{}, ErrClosed
		}
		q.cond.Wait()
	}
}

// TryPop returns immediately with ok=false when the queue is empty.
func (q *Queue) TryPop() (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

func (q *Queue) popLocked() (Item, bool) {
	for _, c := range drainOrder {
		if it, ok := q.classes[c].pop(q); ok {
			q.accountPop(it)
			return it, true
		}
	}
	return Item{}, false
}

// Remove withdraws the queued item with the given id (any class). It
// reports whether the item was found.
func (q *Queue) Remove(id uint64) (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for c := range q.classes {
		if it, ok := q.classes[c].remove(id); ok {
			q.accountPop(it)
			return it, true
		}
	}
	return Item{}, false
}

// DrainActive removes and returns all queued active items, oldest first.
// The runtime uses it when the policy flips to bounce-everything.
func (q *Queue) DrainActive() []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	items := q.classes[Active].drain()
	for _, it := range items {
		q.accountPop(it)
	}
	return items
}

// Stats is a snapshot of queue occupancy and QoS activity.
type Stats struct {
	NormalLen   int
	ActiveLen   int
	MetaLen     int
	NormalBytes uint64
	ActiveBytes uint64
	MetaBytes   uint64
	// Tenants counts distinct tenants with queued items.
	Tenants int
	// Throttled counts, cumulatively, how many times a tenant's head item
	// was deferred because its bucket lacked credit while other tenants
	// were queued — the signal that weighted-fair shaping is biting.
	Throttled uint64
	// DeficitBytes is the credit currently banked across all queued
	// tenants' buckets.
	DeficitBytes uint64
}

// Stats returns current occupancy.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		NormalLen:   q.classes[Normal].len,
		ActiveLen:   q.classes[Active].len,
		MetaLen:     q.classes[Meta].len,
		NormalBytes: q.classes[Normal].bytes,
		ActiveBytes: q.classes[Active].bytes,
		MetaBytes:   q.classes[Meta].bytes,
		Throttled:   q.throttled,
	}
	for c := range q.classes {
		st.Tenants += len(q.classes[c].ring)
		for _, tq := range q.classes[c].ring {
			st.DeficitBytes += tq.deficit
		}
	}
	return st
}

// PendingActive returns copies of all queued active items in arrival
// order, without removing them — the scheduler's view of the active queue.
func (q *Queue) PendingActive() []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.classes[Active].snapshot()
}

// Len returns the total number of queued items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.classes[Normal].len + q.classes[Meta].len + q.classes[Active].len
}

// Close wakes all blocked Pops; queued items can still be drained.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// tenantQueue is one tenant's FIFO within a class, plus its token bucket.
type tenantQueue struct {
	name string
	q    deque
	// deficit is the banked credit in bytes.
	deficit uint64
	// fresh marks that the bucket has not yet been refilled on the
	// current round-robin visit.
	fresh bool
}

// classQueue runs weighted deficit round robin across the tenants queued
// in one class. Tenants enter the ring when their first item arrives and
// leave it — forfeiting banked credit — when their queue empties, so
// credit cannot accumulate while idle.
type classQueue struct {
	byTenant map[string]*tenantQueue
	ring     []*tenantQueue
	cursor   int
	len      int
	bytes    uint64
}

func (cq *classQueue) push(it Item) {
	if cq.byTenant == nil {
		cq.byTenant = make(map[string]*tenantQueue)
	}
	tq, ok := cq.byTenant[it.Tenant]
	if !ok {
		tq = &tenantQueue{name: it.Tenant, fresh: true}
		cq.byTenant[it.Tenant] = tq
		cq.ring = append(cq.ring, tq)
	}
	tq.q.push(it)
	cq.len++
	cq.bytes += it.Bytes
}

// pop serves the next item under WDRR. Called with the queue lock held.
func (cq *classQueue) pop(q *Queue) (Item, bool) {
	if cq.len == 0 {
		return Item{}, false
	}
	// Each iteration either serves an item, retires an empty tenant, or
	// refills one bucket and advances — and a bucket's cap never drops
	// below its head item's cost — so the loop always terminates with a
	// served item while cq.len > 0.
	for {
		if cq.cursor >= len(cq.ring) {
			cq.cursor = 0
		}
		tq := cq.ring[cq.cursor]
		if tq.q.len() == 0 {
			cq.retire(cq.cursor)
			continue
		}
		head, _ := tq.q.peek()
		cost := itemCost(head)
		if tq.fresh {
			grant := q.grantFor(tq.name)
			tq.deficit += grant
			// Token-bucket cap: at most two rounds of credit may be
			// banked, but always enough to cover the head item so an
			// oversized request cannot starve.
			burst := 2 * grant
			if burst < cost {
				burst = cost
			}
			if tq.deficit > burst {
				tq.deficit = burst
			}
			tq.fresh = false
		}
		if tq.deficit >= cost {
			it, _ := tq.q.pop()
			tq.deficit -= cost
			cq.len--
			cq.bytes -= it.Bytes
			if tq.q.len() == 0 {
				cq.retire(cq.cursor)
			}
			return it, true
		}
		// Head deferred for credit: move on to the next tenant. Only
		// count it as throttling when someone else stood to gain.
		if len(cq.ring) > 1 {
			q.throttled++
		}
		tq.fresh = true
		cq.cursor++
	}
}

// retire removes the tenant at ring index i, forfeiting its credit.
func (cq *classQueue) retire(i int) {
	tq := cq.ring[i]
	tq.deficit = 0
	tq.fresh = true
	delete(cq.byTenant, tq.name)
	cq.ring = append(cq.ring[:i], cq.ring[i+1:]...)
	if cq.cursor > i {
		cq.cursor--
	}
}

func (cq *classQueue) remove(id uint64) (Item, bool) {
	for i, tq := range cq.ring {
		if it, ok := tq.q.remove(id); ok {
			cq.len--
			cq.bytes -= it.Bytes
			if tq.q.len() == 0 {
				cq.retire(i)
			}
			return it, true
		}
	}
	return Item{}, false
}

// drain empties the class, returning items in arrival order.
func (cq *classQueue) drain() []Item {
	items := cq.snapshot()
	for _, tq := range cq.ring {
		tq.deficit = 0
		tq.fresh = true
	}
	cq.byTenant = nil
	cq.ring = nil
	cq.cursor = 0
	cq.len = 0
	cq.bytes = 0
	return items
}

// snapshot copies all queued items in arrival order.
func (cq *classQueue) snapshot() []Item {
	out := make([]Item, 0, cq.len)
	for _, tq := range cq.ring {
		out = append(out, tq.q.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// deque is a slice-backed FIFO with O(1) amortised push/pop and O(n)
// removal by id (rare: cancellations and policy flips only).
type deque struct {
	items []Item
	head  int
}

func (d *deque) push(it Item) { d.items = append(d.items, it) }

func (d *deque) peek() (Item, bool) {
	if d.head >= len(d.items) {
		return Item{}, false
	}
	return d.items[d.head], true
}

func (d *deque) pop() (Item, bool) {
	if d.head >= len(d.items) {
		return Item{}, false
	}
	it := d.items[d.head]
	d.items[d.head] = Item{} // release payload references
	d.head++
	if d.head > 64 && d.head*2 >= len(d.items) {
		d.items = append(d.items[:0], d.items[d.head:]...)
		d.head = 0
	}
	return it, true
}

func (d *deque) remove(id uint64) (Item, bool) {
	for i := d.head; i < len(d.items); i++ {
		if d.items[i].ID == id {
			it := d.items[i]
			d.items = append(d.items[:i], d.items[i+1:]...)
			return it, true
		}
	}
	return Item{}, false
}

func (d *deque) len() int { return len(d.items) - d.head }

func (d *deque) snapshot() []Item {
	out := make([]Item, d.len())
	copy(out, d.items[d.head:])
	return out
}
