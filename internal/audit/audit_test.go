package audit

import (
	"reflect"
	"testing"
	"time"
)

func rec(trigger string, reqs ...Feature) Record {
	return Record{
		Solver:  "maxgain",
		Trigger: trigger,
		Env:     Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6},
		Reqs:    reqs,
	}
}

func newcomer(trace uint64, accept bool) Feature {
	return Feature{
		SchedID: 1, ReqID: 1, TraceID: trace, Op: "gaussian2d",
		Bytes: 128e6, ResultBytes: 29,
		PredActive: 1.6, PredNormal: 1.085, PredClient: 1.6,
		Accept: accept, Newcomer: true,
	}
}

func TestLogAppendResolveSnapshot(t *testing.T) {
	l := NewLog(8)
	l.SetNode("data-0")
	seq := l.Append(rec(TriggerAdmit, newcomer(0xa1, true)))
	if seq != 1 {
		t.Fatalf("first seq = %d", seq)
	}
	if !l.Resolve(seq, Outcome{Disposition: DispDone, KernelNS: 1_600_000_000}) {
		t.Fatal("resolve failed")
	}
	snap := l.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	r := snap[0]
	if r.Node != "data-0" || r.TimeUnixNano == 0 {
		t.Errorf("record not stamped: %+v", r)
	}
	if r.Outcome == nil || r.Outcome.Disposition != DispDone {
		t.Errorf("outcome = %+v", r.Outcome)
	}
	if nc := r.Newcomer(); nc == nil || nc.TraceID != 0xa1 {
		t.Errorf("newcomer = %+v", nc)
	}
	// Snapshots must not alias the ring.
	snap[0].Outcome.Disposition = "tampered"
	snap[0].Reqs[0].Op = "tampered"
	again := l.Snapshot()
	if again[0].Outcome.Disposition != DispDone || again[0].Reqs[0].Op != "gaussian2d" {
		t.Error("snapshot aliases the ring")
	}
}

func TestLogRingWrapAndDropped(t *testing.T) {
	l := NewLog(4)
	var seqs []uint64
	for i := 0; i < 10; i++ {
		seqs = append(seqs, l.Append(rec(TriggerAdmit, newcomer(uint64(i), true))))
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.Dropped() != 6 {
		t.Fatalf("dropped = %d", l.Dropped())
	}
	snap := l.Snapshot()
	for i, r := range snap {
		if want := seqs[6+i]; r.Seq != want {
			t.Errorf("snap[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}
	// Overwritten records can no longer be resolved; retained ones can.
	if l.Resolve(seqs[0], Outcome{Disposition: DispDone}) {
		t.Error("resolved an overwritten record")
	}
	if !l.Resolve(seqs[9], Outcome{Disposition: DispDone}) {
		t.Error("failed to resolve a retained record")
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	if seq := l.Append(rec(TriggerAdmit)); seq != 0 {
		t.Errorf("nil append seq = %d", seq)
	}
	if l.Resolve(1, Outcome{}) {
		t.Error("nil resolve succeeded")
	}
	if l.Snapshot() != nil || l.Len() != 0 || l.Dropped() != 0 || l.Node() != "" {
		t.Error("nil log not inert")
	}
	l.SetNode("x") // must not panic
}

func TestResolveZeroSeqIsNoop(t *testing.T) {
	l := NewLog(2)
	l.Append(rec(TriggerAdmit, newcomer(1, true)))
	if l.Resolve(0, Outcome{Disposition: DispDone}) {
		t.Error("seq 0 resolved")
	}
	if l.Snapshot()[0].Outcome != nil {
		t.Error("seq 0 touched a record")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := NewLog(8)
	l.SetNode("data-1")
	s1 := l.Append(rec(TriggerAdmit, newcomer(0xbeef, false)))
	l.Append(rec(TriggerReevaluate, Feature{SchedID: 7, Op: "sum8", Bytes: 1e6, Accept: true}))
	l.Resolve(s1, Outcome{Disposition: DispBounced})
	want := l.Snapshot()
	data, err := EncodeRecords(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Empty inputs stay well-defined.
	if b, err := EncodeRecords(nil); err != nil || string(b) != "[]" {
		t.Errorf("EncodeRecords(nil) = %q, %v", b, err)
	}
	if r, err := DecodeRecords(nil); err != nil || r != nil {
		t.Errorf("DecodeRecords(nil) = %v, %v", r, err)
	}
	if _, err := DecodeRecords([]byte("{not json")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestLastAndFilterTrace(t *testing.T) {
	var records []Record
	for i := 1; i <= 5; i++ {
		r := rec(TriggerAdmit, newcomer(uint64(i), true))
		r.Seq = uint64(i)
		records = append(records, r)
	}
	if got := Last(records, 2); len(got) != 2 || got[0].Seq != 4 {
		t.Errorf("Last(2) = %+v", got)
	}
	if got := Last(records, 0); len(got) != 5 {
		t.Errorf("Last(0) truncated to %d", len(got))
	}
	if got := Last(records, 99); len(got) != 5 {
		t.Errorf("Last(99) = %d records", len(got))
	}
	if got := FilterTrace(records, 3); len(got) != 1 || got[0].Seq != 3 {
		t.Errorf("FilterTrace = %+v", got)
	}
	if got := FilterTrace(records, 42); got != nil {
		t.Errorf("FilterTrace(miss) = %+v", got)
	}
}

func TestAppendStampsTime(t *testing.T) {
	l := NewLog(2)
	fixed := time.Unix(1_700_000_000, 42)
	l.now = func() time.Time { return fixed }
	l.Append(rec(TriggerAdmit))
	if got := l.Snapshot()[0].TimeUnixNano; got != fixed.UnixNano() {
		t.Errorf("stamped %d, want %d", got, fixed.UnixNano())
	}
	// A caller-provided timestamp is preserved.
	r := rec(TriggerAdmit)
	r.TimeUnixNano = 7
	l.Append(r)
	if got := l.Snapshot()[1].TimeUnixNano; got != 7 {
		t.Errorf("caller timestamp overwritten: %d", got)
	}
}
