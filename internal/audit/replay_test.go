package audit

import (
	"bytes"
	"math"
	"testing"
)

// threshold is a toy policy for unit tests: accept when the predicted
// active cost beats the predicted normal cost. Real solvers come in via
// core.ReplayPolicy (exercised from the core package's tests to keep the
// import direction audit ← core).
type threshold struct{}

func (threshold) Name() string { return "threshold" }
func (threshold) Decide(reqs []Feature, env Env) []bool {
	out := make([]bool, len(reqs))
	for i, f := range reqs {
		out[i] = env.XCost(f) <= env.YCost(f)+env.ClientCost(f)
	}
	return out
}

// admitRecord builds one admit decision over a single newcomer of the
// given size under env, recorded with the given accept choice.
func admitRecord(seq uint64, env Env, bytes uint64, accept bool) Record {
	f := Feature{
		SchedID: seq, ReqID: seq, TraceID: 0xa000 + seq, Op: "gaussian2d",
		Bytes: bytes, ResultBytes: 29,
		Accept: accept, Newcomer: true,
	}
	f.PredActive = env.XCost(f)
	f.PredNormal = env.YCost(f)
	f.PredClient = env.ClientCost(f)
	f.Gain = f.PredActive - f.PredNormal
	return Record{
		Seq: seq, TimeUnixNano: int64(seq), Solver: "maxgain",
		Trigger: TriggerAdmit, Env: env, Reqs: []Feature{f},
	}
}

func TestRecordedPolicyIsFixedPoint(t *testing.T) {
	env := Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	records := []Record{
		admitRecord(1, env, 128e6, true),
		admitRecord(2, env, 64e6, false),
		admitRecord(3, env, 256e6, true),
	}
	rep := Replay(records, Recorded{}, Overrides{})
	if rep.Decisions != 3 || rep.AgreementRate != 1 {
		t.Fatalf("recorded replay diverged: %+v", rep)
	}
	for i, v := range rep.PerRequest {
		if v.ReplayedAccept != records[i].Reqs[0].Accept {
			t.Errorf("decision %d flipped", i)
		}
	}
	if rep.Bounced != 1 || rep.BounceRate != 1.0/3.0 {
		t.Errorf("bounce accounting: %+v", rep)
	}
}

func TestReplaySkipsReevaluateAndUnresolvedNewcomers(t *testing.T) {
	env := Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	reev := Record{Seq: 2, Solver: "maxgain", Trigger: TriggerReevaluate, Env: env,
		Reqs: []Feature{{SchedID: 9, Op: "sum8", Bytes: 1e6, Accept: true}}}
	records := []Record{admitRecord(1, env, 128e6, true), reev}
	rep := Replay(records, Recorded{}, Overrides{})
	if rep.Records != 2 || rep.Decisions != 1 {
		t.Fatalf("records/decisions = %d/%d", rep.Records, rep.Decisions)
	}
}

func TestReplayRegretNonNegativeAndOracleBound(t *testing.T) {
	env := Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 640e6}
	var records []Record
	for i := uint64(1); i <= 20; i++ {
		records = append(records, admitRecord(i, env, i*17e6, i%3 == 0))
	}
	for _, p := range []Policy{Recorded{}, threshold{}} {
		rep := Replay(records, p, Overrides{})
		if rep.RegretSeconds < 0 || rep.MaxRegret < 0 {
			t.Fatalf("%s: negative regret: %+v", p.Name(), rep)
		}
		if rep.TotalSeconds < rep.OracleSeconds-1e-9 {
			t.Fatalf("%s: beat the oracle: total %.6f < oracle %.6f",
				p.Name(), rep.TotalSeconds, rep.OracleSeconds)
		}
		if math.Abs(rep.TotalSeconds-rep.OracleSeconds-rep.RegretSeconds) > 1e-9 {
			t.Fatalf("%s: regret identity broken", p.Name())
		}
	}
	// The threshold policy picks the pointwise-cheaper side by
	// construction, so its regret must be exactly zero here.
	if rep := Replay(records, threshold{}, Overrides{}); rep.RegretSeconds != 0 {
		t.Errorf("threshold regret = %v", rep.RegretSeconds)
	}
}

func TestReplayUsesMeasuredKernelTime(t *testing.T) {
	env := Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	r := admitRecord(1, env, 128e6, true)
	// The kernel really took 3× the prediction: with a measured cost the
	// oracle flips to bouncing, so keeping the request is pure regret.
	measured := int64(3 * r.Reqs[0].PredActive * 1e9)
	r.Outcome = &Outcome{Disposition: DispDone, KernelNS: measured, Processed: 128e6}
	rep := Replay([]Record{r}, Recorded{}, Overrides{})
	v := rep.PerRequest[0]
	if !v.Measured {
		t.Fatal("measured cost not used")
	}
	wantActive := float64(measured)/1e9 + 29/env.BW
	if math.Abs(v.ActiveCost-wantActive) > 1e-9 {
		t.Errorf("active cost %.6f, want %.6f", v.ActiveCost, wantActive)
	}
	if v.Regret <= 0 {
		t.Errorf("regret = %v, want > 0 (active was the wrong call)", v.Regret)
	}

	// A partial (interrupted) run must not be treated as a full measure.
	r2 := admitRecord(2, env, 128e6, true)
	r2.Outcome = &Outcome{Disposition: DispInterrupted, KernelNS: 5e8, Processed: 64e6}
	rep2 := Replay([]Record{r2}, Recorded{}, Overrides{})
	if rep2.PerRequest[0].Measured {
		t.Error("partial kernel run used as a full measurement")
	}
}

func TestReplayOverrides(t *testing.T) {
	env := Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	r := admitRecord(1, env, 128e6, true)
	base := Replay([]Record{r}, threshold{}, Overrides{})
	// An (absurdly) fast network makes bouncing free: the threshold
	// policy must flip to bounce.
	fat := Replay([]Record{r}, threshold{}, Overrides{BW: 1e12, ComputeScale: 100})
	if base.PerRequest[0].ReplayedAccept != true || fat.PerRequest[0].ReplayedAccept != false {
		t.Fatalf("override did not flip the decision: base=%v fat=%v",
			base.PerRequest[0].ReplayedAccept, fat.PerRequest[0].ReplayedAccept)
	}
	// StorageScale rescales a measured kernel time.
	r.Outcome = &Outcome{Disposition: DispDone, KernelNS: 1_600_000_000, Processed: 128e6}
	half := Replay([]Record{r}, Recorded{}, Overrides{StorageScale: 0.5})
	wantActive := 1.6/0.5 + 29/env.BW
	if got := half.PerRequest[0].ActiveCost; math.Abs(got-wantActive) > 1e-9 {
		t.Errorf("scaled measured cost %.6f, want %.6f", got, wantActive)
	}
}

func TestReplayDeterministic(t *testing.T) {
	env := Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 160e6}
	var records []Record
	for i := uint64(1); i <= 50; i++ {
		r := admitRecord(i, env, (i%7+1)*31e6, i%2 == 0)
		if i%3 == 0 {
			r.Outcome = &Outcome{Disposition: DispDone, KernelNS: int64(i) * 1e7, Processed: r.Reqs[0].Bytes}
		}
		records = append(records, r)
	}
	run := func() []byte {
		reports := []Report{
			Replay(records, Recorded{}, Overrides{}),
			Replay(records, threshold{}, Overrides{StorageScale: 0.5}),
		}
		out, err := EncodeReports(reports)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two replays of the same log differ byte-for-byte")
	}
}
