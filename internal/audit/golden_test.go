package audit_test

// Golden decision-log fixture and the cross-checks that keep this package
// honest against core: the fixture under testdata/ is the committed log
// that make replay-determinism and the dosasctl explain golden test run
// against, and it is generated here (go test ./internal/audit -run Golden
// -update) with the real Exhaustive solver choosing the recorded
// dispositions, exactly as the runtime would.

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"dosas/internal/audit"
	"dosas/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenBase keeps the fixture's timestamps fixed and readable.
const goldenBase = int64(1_700_000_000_000_000_000)

// goldenFeature fills the predicted costs of one request under env, the
// same derivation the runtime's recordDecision performs.
func goldenFeature(env audit.Env, f audit.Feature) audit.Feature {
	f.PredActive = env.XCost(f)
	f.PredNormal = env.YCost(f)
	f.PredClient = env.ClientCost(f)
	f.Gain = f.PredActive - f.PredNormal
	return f
}

// goldenRecord runs the real Exhaustive solver over the batch, stamps the
// chosen assignment and flip-delta margins, and computes the objective
// values — a faithful offline reconstruction of one runtime decision.
func goldenRecord(seq uint64, trigger string, env audit.Env, queued, running int, feats []audit.Feature) audit.Record {
	policy := core.ReplayPolicy(core.Exhaustive{})
	accept := policy.Decide(feats, env)
	for i := range feats {
		feats[i].Accept = accept[i]
	}
	chosen := env.TotalTime(feats, accept)
	all := make([]bool, len(feats))
	none := make([]bool, len(feats))
	for i := range all {
		all[i] = true
	}
	for i := range feats {
		accept[i] = !accept[i]
		feats[i].FlipDelta = env.TotalTime(feats, accept) - chosen
		accept[i] = !accept[i]
	}
	return audit.Record{
		Seq:           seq,
		TimeUnixNano:  goldenBase + int64(seq)*1_000_000_000,
		Node:          "data-0",
		Solver:        "exhaustive",
		Trigger:       trigger,
		Env:           env,
		Queued:        queued,
		Running:       running,
		Reqs:          feats,
		PredChosen:    chosen,
		PredAllActive: env.TotalTime(feats, all),
		PredAllNormal: env.TotalTime(feats, none),
	}
}

// goldenRecords is the committed contention-storm log: a lone Gaussian
// request, a four-deep Gaussian pile-up (the paper's crossover point), a
// mixed SUM/Gaussian batch whose accepted newcomer is later interrupted,
// and one periodic re-evaluation sweep.
func goldenRecords() []audit.Record {
	env := audit.Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	gauss := func(sched, req, trace uint64, newcomer bool) audit.Feature {
		return goldenFeature(env, audit.Feature{
			SchedID: sched, ReqID: req, TraceID: trace, Op: "gaussian2d",
			Bytes: 128e6, ResultBytes: 29,
			StorageRate: 80e6, ComputeRate: 80e6, Newcomer: newcomer,
		})
	}
	sum := func(sched, req, trace uint64, bytes uint64) audit.Feature {
		return goldenFeature(env, audit.Feature{
			SchedID: sched, ReqID: req, TraceID: trace, Op: "sum8",
			Bytes: bytes, ResultBytes: 8,
			StorageRate: 860e6, ComputeRate: 860e6,
		})
	}

	r1 := goldenRecord(1, audit.TriggerAdmit, env, 0, 0,
		[]audit.Feature{gauss(1<<62+1, 1, 0xa1, true)})
	// It ran here; the kernel came in 5% over the estimate.
	r1.Outcome = &audit.Outcome{
		Disposition: audit.DispDone,
		KernelNS:    int64(1.05 * r1.Reqs[0].PredActive * 1e9),
		QueueWaitNS: 1_000_000,
		Processed:   128e6,
	}

	r2 := goldenRecord(2, audit.TriggerAdmit, env, 3, 0, []audit.Feature{
		gauss(2, 2, 0xa2, false),
		gauss(3, 3, 0xa3, false),
		gauss(4, 4, 0xa4, false),
		gauss(1<<62+5, 5, 0xa5, true),
	})
	r2.Outcome = &audit.Outcome{Disposition: audit.DispBounced}

	r3 := goldenRecord(3, audit.TriggerAdmit, env, 0, 1, []audit.Feature{
		sum(6, 6, 0xa6, 64e6), // running, 64 MB left
		gauss(1<<62+7, 7, 0xa7, true),
	})
	// Accepted, then interrupted mid-kernel by a later re-evaluation:
	// the bounce-after-interrupt disposition replay must not mistake for
	// a full measurement.
	r3.Outcome = &audit.Outcome{
		Disposition: audit.DispInterrupted,
		KernelNS:    800_000_000,
		QueueWaitNS: 3_000_000,
		Processed:   64e6,
	}

	r4 := goldenRecord(4, audit.TriggerReevaluate, env, 2, 1, []audit.Feature{
		sum(6, 6, 0xa6, 32e6),
		gauss(8, 8, 0xa8, false),
		gauss(9, 9, 0xa9, false),
	})

	return []audit.Record{r1, r2, r3, r4}
}

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("testdata", name)
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(t, name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from the committed golden (regenerate with -update if intended)\ngot:\n%s", name, got)
	}
}

// TestGoldenLogFixture pins the committed decision log byte-for-byte and
// proves it decodes back to exactly the in-memory records.
func TestGoldenLogFixture(t *testing.T) {
	recs := goldenRecords()
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	compareGolden(t, "golden_log.json", data)

	decoded, err := audit.DecodeRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, recs) {
		t.Fatal("fixture does not round-trip through DecodeRecords")
	}
}

// TestGoldenExplainRendering pins the human-readable rationale dosasctl
// explain prints for the fixture.
func TestGoldenExplainRendering(t *testing.T) {
	compareGolden(t, "golden_explain.txt", []byte(audit.FormatRecords(goldenRecords())))
}

// TestGoldenWhatifReport pins the full counterfactual report for the
// fixture across the replay policies the CLI exposes — the same bytes
// make replay-determinism compares.
func TestGoldenWhatifReport(t *testing.T) {
	recs := goldenRecords()
	var reports []audit.Report
	for _, name := range []string{"recorded", "exhaustive", "maxgain", "all-active", "all-normal"} {
		p, err := core.PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, audit.Replay(recs, p, audit.Overrides{}))
	}
	out, err := audit.EncodeReports(reports)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "golden_whatif.json", out)
}

// TestAuditCostsMatchCore pins the restated Eq. 5–7 formulas to core's:
// any drift between the two cost models would silently skew every replay.
func TestAuditCostsMatchCore(t *testing.T) {
	f := func(bytes, result uint32, s8, c8, bw8 uint8) bool {
		env := audit.Env{
			BW:          float64(bw8%200+1) * 1e6,
			StorageRate: float64(s8%200+1) * 1e6,
			ComputeRate: float64(c8%200+1) * 1e6,
		}
		cenv := core.Env{BW: env.BW, StorageRate: env.StorageRate, ComputeRate: env.ComputeRate}
		af := audit.Feature{Bytes: uint64(bytes), ResultBytes: uint64(result)}
		cr := core.Request{Bytes: uint64(bytes), ResultBytes: uint64(result)}
		eq := func(a, b float64) bool { return math.Abs(a-b) <= 1e-12*math.Max(1, math.Abs(b)) }
		return eq(env.XCost(af), cenv.XCost(cr)) &&
			eq(env.YCost(af), cenv.YCost(cr)) &&
			eq(env.ClientCost(af), cenv.ClientCost(cr))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStaticSolversAreFixedPointsUnderReplay: a log recorded under
// AllActive (or AllNormal) replayed under the same policy reproduces
// every disposition — the satellite property pinning replay fidelity.
func TestStaticSolversAreFixedPointsUnderReplay(t *testing.T) {
	env := audit.Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	build := func(accept bool) []audit.Record {
		var recs []audit.Record
		for i := uint64(1); i <= 8; i++ {
			f := goldenFeature(env, audit.Feature{
				SchedID: i, ReqID: i, TraceID: 0xb0 + i, Op: "gaussian2d",
				Bytes: i * 16e6, ResultBytes: 29, Newcomer: true, Accept: accept,
			})
			recs = append(recs, audit.Record{
				Seq: i, TimeUnixNano: goldenBase + int64(i), Solver: "static",
				Trigger: audit.TriggerAdmit, Env: env, Reqs: []audit.Feature{f},
			})
		}
		return recs
	}
	active := audit.Replay(build(true), core.ReplayPolicy(core.AllActive{}), audit.Overrides{})
	if active.AgreementRate != 1 || active.Bounced != 0 {
		t.Fatalf("all-active not a fixed point: %+v", active)
	}
	normal := audit.Replay(build(false), core.ReplayPolicy(core.AllNormal{}), audit.Overrides{})
	if normal.AgreementRate != 1 || normal.Accepted != 0 {
		t.Fatalf("all-normal not a fixed point: %+v", normal)
	}
}

// TestExhaustiveAndMaxGainAgreeOnReplayedLogs: replaying any small-batch
// log, the closed-form MaxGain matches the oracle's objective value —
// the replay-side face of the core solver property test.
func TestExhaustiveAndMaxGainAgreeOnReplayedLogs(t *testing.T) {
	env := audit.Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	var recs []audit.Record
	for i := uint64(1); i <= 8; i++ {
		var feats []audit.Feature
		for j := uint64(0); j <= i%4; j++ {
			feats = append(feats, goldenFeature(env, audit.Feature{
				SchedID: 10*i + j, Op: "gaussian2d",
				Bytes: (i + j*3) * 23e6, ResultBytes: 29,
				Newcomer: j == i%4,
			}))
		}
		recs = append(recs, audit.Record{
			Seq: i, Solver: "exhaustive", Trigger: audit.TriggerAdmit,
			Env: env, Reqs: feats,
		})
	}
	ex := audit.Replay(recs, core.ReplayPolicy(core.Exhaustive{}), audit.Overrides{})
	mg := audit.Replay(recs, core.ReplayPolicy(core.MaxGain{}), audit.Overrides{})
	if ex.Decisions != mg.Decisions || ex.Decisions == 0 {
		t.Fatalf("decision counts differ: %d vs %d", ex.Decisions, mg.Decisions)
	}
	if math.Abs(ex.TotalSeconds-mg.TotalSeconds) > 1e-9 {
		t.Fatalf("objective mismatch: exhaustive %.9f vs maxgain %.9f",
			ex.TotalSeconds, mg.TotalSeconds)
	}
}
