package audit

import (
	"encoding/json"
	"fmt"
)

// Policy is a scheduling algorithm as the replay engine sees it: the same
// shape as core.Solver, restated on audit types so this package stays
// below core. core.ReplayPolicy adapts any real solver into one, so
// counterfactuals run the production MaxGain/Exhaustive code, not a
// re-implementation.
type Policy interface {
	Name() string
	// Decide returns accept[i] == true when request i should run on the
	// storage node under env.
	Decide(reqs []Feature, env Env) []bool
}

// Recorded is the identity policy: it replays exactly the decisions in
// the log. Replaying it must reproduce the recorded dispositions
// bit-for-bit (the fixed-point property the tests pin down), and its
// report is the baseline the counterfactuals are compared against.
type Recorded struct{}

// Name implements Policy.
func (Recorded) Name() string { return "recorded" }

// Decide implements Policy by echoing each feature's recorded assignment.
func (Recorded) Decide(reqs []Feature, _ Env) []bool {
	out := make([]bool, len(reqs))
	for i, f := range reqs {
		out[i] = f.Accept
	}
	return out
}

// Overrides perturbs the recorded environment before replay — the
// "modified EstimatorConfig" axis of a what-if: a different calibrated
// network bandwidth, or storage/compute nodes faster or slower than the
// estimator believed. Zero fields leave the recorded values untouched.
type Overrides struct {
	// BW replaces the recorded network bandwidth (bytes/second).
	BW float64 `json:"bw,omitempty"`
	// StorageScale multiplies every storage rate (0.5 = half as fast).
	// Measured kernel times are rescaled by 1/StorageScale to match.
	StorageScale float64 `json:"storage_scale,omitempty"`
	// ComputeScale multiplies every compute rate.
	ComputeScale float64 `json:"compute_scale,omitempty"`
}

func (o Overrides) env(e Env) Env {
	if o.BW > 0 {
		e.BW = o.BW
	}
	if o.StorageScale > 0 {
		e.StorageRate *= o.StorageScale
	}
	if o.ComputeScale > 0 {
		e.ComputeRate *= o.ComputeScale
	}
	return e
}

func (o Overrides) feature(f Feature) Feature {
	if o.StorageScale > 0 {
		f.StorageRate *= o.StorageScale
	}
	if o.ComputeScale > 0 {
		f.ComputeRate *= o.ComputeScale
	}
	return f
}

// Verdict scores one replayed admission decision. Costs are seconds.
type Verdict struct {
	Seq     uint64 `json:"seq"`
	ReqID   uint64 `json:"req_id"`
	TraceID uint64 `json:"trace_id,omitempty"`
	Op      string `json:"op"`
	Bytes   uint64 `json:"bytes"`
	// RecordedAccept is what the logged solver chose; ReplayedAccept is
	// what this policy chooses on the same batch.
	RecordedAccept bool `json:"recorded_accept"`
	ReplayedAccept bool `json:"replayed_accept"`
	// ActiveCost is the request's cost if run on the storage node —
	// measured kernel time when the log has one, the Eq. 5 prediction
	// otherwise. BounceCost is transfer plus client compute (Eqs. 6+7).
	ActiveCost float64 `json:"active_cost"`
	BounceCost float64 `json:"bounce_cost"`
	// Measured reports whether ActiveCost came from a real measurement.
	Measured bool `json:"measured,omitempty"`
	// Cost is the replayed choice's cost; Regret is Cost minus the
	// pointwise oracle (the cheaper of the two sides), ≥ 0.
	Cost   float64 `json:"cost"`
	Regret float64 `json:"regret"`
}

// Report is the deterministic summary of one counterfactual replay.
type Report struct {
	Policy    string    `json:"policy"`
	Overrides Overrides `json:"overrides"`
	// Records is how many solver invocations the log held; Decisions how
	// many of them admitted a newcomer (the unit replay scores).
	Records   int `json:"records"`
	Decisions int `json:"decisions"`
	Accepted  int `json:"accepted"`
	Bounced   int `json:"bounced"`
	// BounceRate is Bounced/Decisions.
	BounceRate float64 `json:"bounce_rate"`
	// Agreements counts decisions where the policy matches the recorded
	// choice; AgreementRate is the fraction.
	Agreements    int     `json:"agreements"`
	AgreementRate float64 `json:"agreement_rate"`
	// KernelSeconds is storage-node kernel time the policy would consume
	// (Σ ActiveCost over accepted); TotalSeconds sums every decision's
	// chosen cost; OracleSeconds is the pointwise-optimal total.
	KernelSeconds float64 `json:"kernel_seconds"`
	TotalSeconds  float64 `json:"total_seconds"`
	OracleSeconds float64 `json:"oracle_seconds"`
	RegretSeconds float64 `json:"regret_seconds"`
	MeanRegret    float64 `json:"mean_regret"`
	MaxRegret     float64 `json:"max_regret"`
	// MaxRegretReq locates the worst decision for the operator.
	MaxRegretReq   uint64    `json:"max_regret_req,omitempty"`
	MaxRegretTrace uint64    `json:"max_regret_trace,omitempty"`
	PerRequest     []Verdict `json:"per_request"`
}

// Replay re-runs every admission decision in records under policy and
// the environment overrides, scoring each counterfactual choice with the
// recorded actual costs where the log has them. The iteration order and
// all arithmetic are deterministic: replaying the same log twice yields
// byte-identical reports (the make replay-determinism gate).
//
// Scoring is pointwise: each decision is charged the cost of the side it
// picked (measured kernel time + result transfer for run-active when the
// request really ran here; the Eq. 5–7 predictions under the overridden
// env otherwise), and regret is measured against the per-request oracle
// that always picks the cheaper side. The batch max-client-cost coupling
// of Eq. 4 is deliberately dropped — it needs the counterfactual queue
// state, which a log of real decisions cannot provide.
func Replay(records []Record, policy Policy, ov Overrides) Report {
	rep := Report{Policy: policy.Name(), Overrides: ov, Records: len(records)}
	for ri := range records {
		r := &records[ri]
		if r.Trigger != TriggerAdmit {
			continue
		}
		nc := r.Newcomer()
		if nc == nil {
			continue
		}
		env := ov.env(r.Env)
		feats := make([]Feature, len(r.Reqs))
		for i, f := range r.Reqs {
			feats[i] = ov.feature(f)
		}
		decision := policy.Decide(feats, env)
		accept := false
		for i := range feats {
			if feats[i].Newcomer {
				accept = decision[i]
				break
			}
		}

		f := ov.feature(*nc)
		active := env.XCost(f)
		measured := false
		if o := r.Outcome; o != nil && o.KernelNS > 0 &&
			(o.Disposition == DispDone || o.Disposition == DispInterrupted) &&
			o.Processed == nc.Bytes {
			// A full measured kernel run beats any prediction. Partial
			// (interrupted) runs are not extrapolated.
			sec := float64(o.KernelNS) / 1e9
			if ov.StorageScale > 0 {
				sec /= ov.StorageScale
			}
			active = sec + float64(f.ResultBytes)/env.BW
			measured = true
		}
		bounce := env.YCost(f) + env.ClientCost(f)

		cost := bounce
		if accept {
			cost = active
		}
		oracle := active
		if bounce < oracle {
			oracle = bounce
		}
		v := Verdict{
			Seq: r.Seq, ReqID: nc.ReqID, TraceID: nc.TraceID,
			Op: nc.Op, Bytes: nc.Bytes,
			RecordedAccept: nc.Accept, ReplayedAccept: accept,
			ActiveCost: active, BounceCost: bounce, Measured: measured,
			Cost: cost, Regret: cost - oracle,
		}
		rep.Decisions++
		if accept {
			rep.Accepted++
			rep.KernelSeconds += active
		} else {
			rep.Bounced++
		}
		if accept == nc.Accept {
			rep.Agreements++
		}
		rep.TotalSeconds += cost
		rep.OracleSeconds += oracle
		rep.RegretSeconds += v.Regret
		if v.Regret > rep.MaxRegret {
			rep.MaxRegret = v.Regret
			rep.MaxRegretReq = v.ReqID
			rep.MaxRegretTrace = v.TraceID
		}
		rep.PerRequest = append(rep.PerRequest, v)
	}
	if rep.Decisions > 0 {
		rep.BounceRate = float64(rep.Bounced) / float64(rep.Decisions)
		rep.AgreementRate = float64(rep.Agreements) / float64(rep.Decisions)
		rep.MeanRegret = rep.RegretSeconds / float64(rep.Decisions)
	}
	return rep
}

// EncodeReports marshals replay reports as stable, indented JSON — the
// byte-for-byte comparable artifact behind make replay-determinism.
func EncodeReports(reports []Report) ([]byte, error) {
	if reports == nil {
		reports = []Report{}
	}
	out, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("audit: encoding reports: %w", err)
	}
	return append(out, '\n'), nil
}
