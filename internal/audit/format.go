package audit

import (
	"fmt"
	"strings"
	"time"
)

// fmtRate renders a bytes/second rate in MB/s.
func fmtRate(bps float64) string { return fmt.Sprintf("%.1f MB/s", bps/1e6) }

// fmtSize renders a byte count in MB (the paper's working unit).
func fmtSize(b uint64) string { return fmt.Sprintf("%.1f MB", float64(b)/1e6) }

// verdict names one side of the bounce/run decision.
func verdict(accept bool) string {
	if accept {
		return "RUN-ACTIVE"
	}
	return "BOUNCE"
}

// FormatRecord renders one decision record as the multi-line rationale
// `dosasctl explain` prints: the environment at decision time, the
// objective values the solver weighed, every request's predicted costs
// and margin to the decision boundary, and — when resolved — the
// measured outcome next to the prediction. Output is deterministic for a
// given record (timestamps render in UTC).
func FormatRecord(r Record) string {
	var b strings.Builder
	ts := time.Unix(0, r.TimeUnixNano).UTC().Format(time.RFC3339Nano)
	fmt.Fprintf(&b, "decision %d  %s  node=%s  solver=%s  trigger=%s\n",
		r.Seq, ts, r.Node, r.Solver, r.Trigger)
	fmt.Fprintf(&b, "  env: bw=%s  S=%s  C=%s  queued=%d running=%d\n",
		fmtRate(r.Env.BW), fmtRate(r.Env.StorageRate), fmtRate(r.Env.ComputeRate),
		r.Queued, r.Running)
	fmt.Fprintf(&b, "  objective: chosen=%.3fs  all-active=%.3fs  all-normal=%.3fs\n",
		r.PredChosen, r.PredAllActive, r.PredAllNormal)
	for _, f := range r.Reqs {
		marker := "   "
		if f.Newcomer {
			marker = " → "
		}
		id := fmt.Sprintf("sched=%d", f.SchedID)
		if f.ReqID != 0 {
			id = fmt.Sprintf("req=%d", f.ReqID)
		}
		if f.TraceID != 0 {
			id += fmt.Sprintf(" trace=%#x", f.TraceID)
		}
		if f.Tenant != "" {
			id += fmt.Sprintf(" tenant=%s", f.Tenant)
		}
		fmt.Fprintf(&b, "%s%s %s %s: %s  x=%.3fs y=%.3fs c=%.3fs gain=%.3fs",
			marker, id, f.Op, fmtSize(f.Bytes), verdict(f.Accept),
			f.PredActive, f.PredNormal, f.PredClient, f.Gain)
		if f.FlipDelta != 0 {
			fmt.Fprintf(&b, " margin=%.3fs", f.FlipDelta)
		}
		b.WriteByte('\n')
	}
	if o := r.Outcome; o != nil {
		fmt.Fprintf(&b, "  outcome: %s", o.Disposition)
		if o.KernelNS > 0 {
			fmt.Fprintf(&b, "  kernel=%.3fs", float64(o.KernelNS)/1e9)
			if nc := r.Newcomer(); nc != nil && nc.PredActive > 0 {
				errPct := 100 * (float64(o.KernelNS)/1e9 - nc.PredActive) / nc.PredActive
				fmt.Fprintf(&b, " (predicted x=%.3fs, error %+.0f%%)", nc.PredActive, errPct)
			}
		}
		if o.QueueWaitNS > 0 {
			fmt.Fprintf(&b, "  queue-wait=%.3fs", float64(o.QueueWaitNS)/1e9)
		}
		if o.Processed > 0 {
			fmt.Fprintf(&b, "  processed=%s", fmtSize(o.Processed))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatRecords renders a record sequence separated by blank lines.
func FormatRecords(records []Record) string {
	var b strings.Builder
	for i, r := range records {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(FormatRecord(r))
	}
	return b.String()
}
