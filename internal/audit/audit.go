// Package audit records every scheduling decision the Active I/O
// Runtime's solver makes — the environment the Contention Estimator saw,
// the per-request feature vectors it derived, the assignment the solver
// chose, and (once the request finishes) the measured outcome. The log is
// a bounded in-memory ring, fetched over the wire as JSON, and is the
// input to the counterfactual replay engine in replay.go: the same
// traffic can be re-scheduled offline under a different policy or a
// perturbed environment and scored against what really happened.
//
// The package sits below core (core appends to the ring), so it must not
// import core; the few cost formulas it needs (Eqs. 5–7 of the paper) are
// restated here on its own Env/Feature types and cross-checked against
// core's in core's tests.
package audit

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Triggers: which code path invoked the solver.
const (
	// TriggerAdmit is the arrival-time decision over the active set plus
	// the newcomer; exactly one Feature has Newcomer set.
	TriggerAdmit = "admit"
	// TriggerReevaluate is the periodic policy sweep over queued and
	// running work; no Feature is a newcomer.
	TriggerReevaluate = "reevaluate"
)

// Realized dispositions, filled into a record's Outcome when the request
// it decided finishes. They deliberately distinguish the ways a request
// can leave the storage node so replay can tell a clean completion from a
// bounce-after-interrupt.
const (
	DispDone          = "done"           // kernel ran to completion here
	DispBounced       = "bounced"        // rejected at admission
	DispBouncedQueued = "bounced-queued" // bounced from the queue at re-evaluation
	DispInterrupted   = "interrupted"    // running kernel checkpointed and migrated
	DispCancelled     = "cancelled"      // withdrawn by the client while queued
	DispError         = "error"          // kernel failed
	DispShutdown      = "shutdown"       // runtime closed before it ran
)

// Env is the scheduling environment snapshot at decision time — the
// paper's bw, S_{C,op} and C_{C,op} as the Contention Estimator reported
// them. All rates are bytes/second.
type Env struct {
	BW          float64 `json:"bw"`
	StorageRate float64 `json:"storage_rate"`
	ComputeRate float64 `json:"compute_rate"`
}

func (e Env) storageRate(f Feature) float64 {
	if f.StorageRate > 0 {
		return f.StorageRate
	}
	return e.StorageRate
}

func (e Env) computeRate(f Feature) float64 {
	if f.ComputeRate > 0 {
		return f.ComputeRate
	}
	return e.ComputeRate
}

// XCost is x_i (Eq. 5): process d_i bytes here, ship the h(d_i) result.
func (e Env) XCost(f Feature) float64 {
	return float64(f.Bytes)/e.storageRate(f) + float64(f.ResultBytes)/e.BW
}

// YCost is y_i (Eq. 6): ship the raw bytes to the compute node.
func (e Env) YCost(f Feature) float64 { return float64(f.Bytes) / e.BW }

// ClientCost is c_i (Eq. 7): the compute node's time over the raw bytes.
func (e Env) ClientCost(f Feature) float64 { return float64(f.Bytes) / e.computeRate(f) }

// TotalTime evaluates the paper's objective (Eq. 4) over an assignment:
// accepted requests serialise their x_i on the storage node, bounced
// requests serialise their y_i transfers and then compute in parallel
// (max c_i). Mirrors core.Env.TotalTime.
func (e Env) TotalTime(reqs []Feature, accept []bool) float64 {
	var t, z float64
	for i, f := range reqs {
		if accept[i] {
			t += e.XCost(f)
		} else {
			t += e.YCost(f)
			if c := e.ClientCost(f); c > z {
				z = c
			}
		}
	}
	return t + z
}

// Feature is the per-request feature vector the solver decided over: the
// request's identity, size, per-op rates, and the predicted costs under
// the decision-time Env. Costs are seconds.
type Feature struct {
	// SchedID is the runtime-internal scheduler id (ephemeral for the
	// newcomer); ReqID/TraceID are the client-visible identities.
	SchedID     uint64  `json:"sched_id"`
	ReqID       uint64  `json:"req_id,omitempty"`
	TraceID     uint64  `json:"trace_id,omitempty"`
	Tenant      string  `json:"tenant,omitempty"`
	Op          string  `json:"op"`
	Bytes       uint64  `json:"bytes"`
	ResultBytes uint64  `json:"result_bytes"`
	StorageRate float64 `json:"storage_rate,omitempty"`
	ComputeRate float64 `json:"compute_rate,omitempty"`
	PredActive  float64 `json:"pred_active"` // x_i
	PredNormal  float64 `json:"pred_normal"` // y_i
	PredClient  float64 `json:"pred_client"` // c_i
	Gain        float64 `json:"gain"`        // x_i − y_i
	// FlipDelta is the margin to the decision boundary: how much the
	// predicted objective worsens if only this request's assignment is
	// flipped. Near zero means the choice was a coin toss. Zero when the
	// batch was too large to afford the extra evaluations.
	FlipDelta float64 `json:"flip_delta,omitempty"`
	Accept    bool    `json:"accept"`
	Newcomer  bool    `json:"newcomer,omitempty"`
}

// Outcome is what actually happened to the request an admit record
// decided, filled in asynchronously on completion.
type Outcome struct {
	Disposition string `json:"disposition"`
	// KernelNS is the measured storage-side kernel time (partial for
	// interrupted requests). Zero when the request never ran here.
	KernelNS    int64 `json:"kernel_ns,omitempty"`
	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	// Processed is how many input bytes the kernel consumed here.
	Processed uint64 `json:"processed,omitempty"`
}

// Record is one solver invocation: everything needed to re-run it.
type Record struct {
	Seq          uint64 `json:"seq"`
	TimeUnixNano int64  `json:"time_unix_nano"`
	Node         string `json:"node,omitempty"`
	Solver       string `json:"solver"`
	Trigger      string `json:"trigger"`
	Env          Env    `json:"env"`
	// Queued and Running are the depths of the active set at decision
	// time (context beyond the Env, cheap to keep).
	Queued  int       `json:"queued"`
	Running int       `json:"running"`
	Reqs    []Feature `json:"reqs"`
	// Predicted objective values (seconds) under the decision-time Env:
	// the chosen assignment and the two static extremes.
	PredChosen    float64 `json:"pred_chosen"`
	PredAllActive float64 `json:"pred_all_active"`
	PredAllNormal float64 `json:"pred_all_normal"`
	// Outcome is the newcomer's realized fate; nil while in flight (or
	// forever, for reevaluate records, which decide no single request).
	Outcome *Outcome `json:"outcome,omitempty"`
}

// Newcomer returns the arriving request's feature vector, or nil for
// records without one (reevaluate sweeps).
func (r *Record) Newcomer() *Feature {
	for i := range r.Reqs {
		if r.Reqs[i].Newcomer {
			return &r.Reqs[i]
		}
	}
	return nil
}

// clone deep-copies a record so snapshots cannot alias the ring.
func (r Record) clone() Record {
	r.Reqs = append([]Feature(nil), r.Reqs...)
	if r.Outcome != nil {
		o := *r.Outcome
		r.Outcome = &o
	}
	return r
}

// Log is a bounded, thread-safe ring of decision records. All methods are
// safe on a nil *Log (they become no-ops), so callers never need nil
// checks on hot paths — the trace.Recorder convention.
type Log struct {
	mu      sync.Mutex
	buf     []Record
	next    int    // ring write cursor
	n       int    // live records (≤ len(buf))
	seq     uint64 // records ever appended
	dropped uint64 // records overwritten before being fetched
	node    string
	now     func() time.Time
}

// NewLog builds a ring retaining the last capacity records (minimum 1).
func NewLog(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{buf: make([]Record, capacity), now: time.Now}
}

// SetNode stamps subsequent records with the node's identity.
func (l *Log) SetNode(node string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.node = node
	l.mu.Unlock()
}

// Node returns the stamped identity.
func (l *Log) Node() string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.node
}

// Append stores a record and returns its sequence number (≥ 1), the
// handle Resolve later uses to attach the outcome. Returns 0 on a nil
// log. Append stamps Seq, and Node/TimeUnixNano when unset.
func (l *Log) Append(r Record) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	r.Seq = l.seq
	if r.TimeUnixNano == 0 {
		r.TimeUnixNano = l.now().UnixNano()
	}
	if r.Node == "" {
		r.Node = l.node
	}
	if l.n == len(l.buf) {
		l.dropped++
	} else {
		l.n++
	}
	l.buf[l.next] = r
	l.next = (l.next + 1) % len(l.buf)
	return r.Seq
}

// Resolve attaches the realized outcome to record seq. It reports false
// when the record has already been overwritten (or seq is 0 — the "no
// record was made" handle, so unconditional Resolve calls stay cheap).
func (l *Log) Resolve(seq uint64, o Outcome) bool {
	if l == nil || seq == 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Newest records resolve most often; scan backwards from the cursor.
	for i := 0; i < l.n; i++ {
		idx := (l.next - 1 - i + 2*len(l.buf)) % len(l.buf)
		if l.buf[idx].Seq == seq {
			cp := o
			l.buf[idx].Outcome = &cp
			return true
		}
		if l.buf[idx].Seq < seq {
			return false
		}
	}
	return false
}

// Snapshot returns the retained records oldest-first, deep-copied.
func (l *Log) Snapshot() []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, l.n)
	start := (l.next - l.n + len(l.buf)) % len(l.buf)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)].clone())
	}
	return out
}

// Len reports the number of retained records.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Dropped reports how many records the ring has overwritten.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Last returns the trailing n records of a chronological slice.
func Last(records []Record, n int) []Record {
	if n <= 0 || n >= len(records) {
		return records
	}
	return records[len(records)-n:]
}

// FilterTrace keeps records whose batch involved the given trace.
func FilterTrace(records []Record, traceID uint64) []Record {
	var out []Record
	for _, r := range records {
		for _, f := range r.Reqs {
			if f.TraceID == traceID {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// EncodeRecords marshals records as the canonical JSON array exchanged on
// the wire and written to decision-log files.
func EncodeRecords(records []Record) ([]byte, error) {
	if records == nil {
		records = []Record{}
	}
	return json.Marshal(records)
}

// DecodeRecords is the inverse of EncodeRecords.
func DecodeRecords(data []byte) ([]Record, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var out []Record
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("audit: decoding records: %w", err)
	}
	return out, nil
}
