package dosas_test

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"dosas"
	"dosas/internal/workload"
)

func startCluster(t *testing.T, o dosas.Options) *dosas.Cluster {
	t.Helper()
	c, err := dosas.StartCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func connect(t *testing.T, c *dosas.Cluster, s dosas.Scheme) *dosas.FS {
	t.Helper()
	fs, err := c.Connect(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Close)
	return fs
}

func TestPublicQuickstartFlow(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 4})
	fs := connect(t, c, dosas.DOSAS)

	f, err := fs.Create("quick/data")
	if err != nil {
		t.Fatal(err)
	}
	data := workload.RandomBytes(500_000, 1)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	res, err := f.ReadEx("sum8", nil, 0, f.Size())
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, b := range data {
		want += uint64(b)
	}
	if got := dosas.SumResult(res.Output); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if !res.Completed {
		t.Error("result not completed")
	}
	if len(res.Parts) == 0 {
		t.Error("no parts recorded")
	}
}

func TestPublicSchemesAgreeOnResults(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 2})
	f0 := connect(t, c, dosas.AS)
	fw, err := f0.Create("agree/x")
	if err != nil {
		t.Fatal(err)
	}
	data := workload.Float64Bytes(workload.FloatSeries(50_000, 2))
	if _, err := fw.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	var outputs [][]byte
	for _, scheme := range []dosas.Scheme{dosas.TS, dosas.AS, dosas.DOSAS} {
		fs := connect(t, c, scheme)
		f, err := fs.Open("agree/x")
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.ReadEx("moments", nil, 0, f.Size())
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		outputs = append(outputs, res.Output)
	}
	m0, err := dosas.MomentsResult(outputs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(outputs); i++ {
		m, err := dosas.MomentsResult(outputs[i])
		if err != nil {
			t.Fatal(err)
		}
		if m.Count != m0.Count || math.Abs(m.Mean()-m0.Mean()) > 1e-9 {
			t.Errorf("scheme %d disagrees: %+v vs %+v", i, m, m0)
		}
	}
}

func TestPublicFileIO(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 3})
	fs := connect(t, c, dosas.DOSAS)
	f, err := fs.Create("io/cursor", dosas.CreateOptions{StripeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
	// Seek from end.
	if _, err := f.Seek(-5, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	tail := make([]byte, 5)
	if _, err := io.ReadFull(f, tail); err != nil {
		t.Fatal(err)
	}
	if string(tail) != "world" {
		t.Fatalf("tail = %q", tail)
	}
}

func TestPublicStatListRemove(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 2})
	fs := connect(t, c, dosas.DOSAS)
	f, err := fs.Create("meta/file", dosas.CreateOptions{StripeSize: 1024, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("0123456789"), 0)
	fi, err := fs.Stat("meta/file")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 10 || fi.StripeSize != 1024 || fi.Width != 2 {
		t.Errorf("info = %+v", fi)
	}
	names, err := fs.List("meta/")
	if err != nil || len(names) != 1 {
		t.Fatalf("list = %v, %v", names, err)
	}
	if err := fs.Remove("meta/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("meta/file"); !errors.Is(err, dosas.ErrNotFound) {
		t.Errorf("open removed = %v", err)
	}
	if _, err := fs.Create("meta/dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("meta/dup"); !errors.Is(err, dosas.ErrExists) {
		t.Errorf("dup create = %v", err)
	}
}

func TestMPIIOInterface(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 2})
	fs := connect(t, c, dosas.DOSAS)
	f, err := fs.Create("mpi/file")
	if err != nil {
		t.Fatal(err)
	}
	payload := workload.RandomBytes(64_000, 9)
	var st dosas.Status
	if err := dosas.FileWrite(f, payload, len(payload), dosas.Byte, &st); err != nil {
		t.Fatal(err)
	}
	if st.Count != len(payload) {
		t.Fatalf("write count = %d", st.Count)
	}

	fh, err := dosas.FileOpen(fs, "mpi/file")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1000)
	if err := dosas.FileRead(fh, buf, 1000, dosas.Byte, &st); err != nil {
		t.Fatal(err)
	}
	if st.Count != 1000 || !bytes.Equal(buf, payload[:1000]) {
		t.Fatal("FileRead mismatch")
	}

	// The extended call: sum the next 63000 bytes where the data lives.
	var result dosas.ExResult
	if err := dosas.FileReadEx(fh, &result, 63_000, dosas.Byte, "sum8", nil, &st); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, b := range payload[1000:64_000] {
		want += uint64(b)
	}
	if got := dosas.SumResult(result.Buf); got != want {
		t.Errorf("ReadEx sum = %d, want %d", got, want)
	}
	if !result.Completed || result.Offset != 64_000 {
		t.Errorf("result = %+v", result)
	}
	if len(st.Where) == 0 {
		t.Error("status lacks execution provenance")
	}

	if err := dosas.FileClose(&fh); err != nil || fh != nil {
		t.Error("FileClose failed")
	}
}

func TestMPIIODatatypes(t *testing.T) {
	sizes := map[dosas.Datatype]int{
		dosas.Byte: 1, dosas.Int32: 4, dosas.Int64: 8,
		dosas.Float32: 4, dosas.Float64: 8,
	}
	for dt, want := range sizes {
		if dt.Size() != want {
			t.Errorf("%v size = %d", dt, dt.Size())
		}
	}
	if dosas.Float64.String() != "MPI_DOUBLE" {
		t.Errorf("name = %s", dosas.Float64)
	}
}

func TestMPIIOFloat64ReadEx(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 2})
	fs := connect(t, c, dosas.AS)
	f, err := fs.Create("mpi/floats")
	if err != nil {
		t.Fatal(err)
	}
	vals := workload.FloatSeries(10_000, 4)
	if _, err := f.WriteAt(workload.Float64Bytes(vals), 0); err != nil {
		t.Fatal(err)
	}
	fh, _ := dosas.FileOpen(fs, "mpi/floats")
	var result dosas.ExResult
	var st dosas.Status
	if err := dosas.FileReadEx(fh, &result, len(vals), dosas.Float64, "sum64", nil, &st); err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, v := range vals {
		want += v
	}
	if got := dosas.Sum64Result(result.Buf); math.Abs(got-want) > math.Abs(want)*1e-9 {
		t.Errorf("sum64 = %v, want %v", got, want)
	}
}

func TestPublicTCPCluster(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 2, TCP: true})
	fs, err := dosas.Connect(dosas.ClientOptions{
		MetaAddr:  c.MetaAddr(),
		DataAddrs: c.DataAddrs(),
		Scheme:    dosas.DOSAS,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("tcp/file")
	if err != nil {
		t.Fatal(err)
	}
	data := workload.RandomBytes(200_000, 3)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	res, err := f.ReadEx("histogram", nil, 0, f.Size())
	if err != nil {
		t.Fatal(err)
	}
	bins, err := dosas.HistogramResult(res.Output)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, v := range bins {
		total += v
	}
	if total != uint64(len(data)) {
		t.Errorf("histogram total = %d, want %d", total, len(data))
	}
}

func TestPublicDurableCluster(t *testing.T) {
	dir := t.TempDir()
	c1, err := dosas.StartCluster(dosas.Options{DataServers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fs1, err := c1.Connect(dosas.DOSAS)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs1.Create("durable/x")
	if err != nil {
		t.Fatal(err)
	}
	data := workload.RandomBytes(100_000, 5)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	fs1.Close()
	c1.Close()

	// Restart on the same directory: namespace and stripes must survive.
	c2 := startCluster(t, dosas.Options{DataServers: 2, DataDir: dir})
	fs2 := connect(t, c2, dosas.DOSAS)
	g, err := fs2.Open("durable/x")
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across restart")
	}
}

func TestPublicWidthOneForUncombinable(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 4})
	fs := connect(t, c, dosas.AS)
	f, err := fs.Create("ds/one", dosas.CreateOptions{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.StripeWidth() != 1 {
		t.Fatalf("width = %d", f.StripeWidth())
	}
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i % 17)
	}
	if _, err := f.WriteAt(workload.Float64Bytes(vals), 0); err != nil {
		t.Fatal(err)
	}
	res, err := f.ReadEx("downsample", dosas.DownsampleParams(64), 0, f.Size())
	if err != nil {
		t.Fatal(err)
	}
	if got := dosas.DownsampleResult(res.Output); len(got) != 64 {
		t.Errorf("samples = %d", len(got))
	}
}

func TestPublicTransformTo(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 2})
	fs := connect(t, c, dosas.DOSAS)
	const w, h = 64, 64
	f, err := fs.Create("xf/img", dosas.CreateOptions{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	img := workload.SyntheticImage(w, h, 1)
	if _, err := f.WriteAt(img, 0); err != nil {
		t.Fatal(err)
	}
	params := dosas.GaussianParams(w, true)
	dst, info, err := f.TransformTo("xf/img-out", "gaussian2d", params)
	if err != nil {
		t.Fatal(err)
	}
	if info.BytesWritten != uint64(len(img)) {
		t.Errorf("wrote %d", info.BytesWritten)
	}
	got, err := dst.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(img) {
		t.Fatalf("output size = %d", len(got))
	}
	// The output must be findable by name and reduced traffic verified:
	// run a digest over the new file.
	res, err := dst.ReadEx("gaussian2d", dosas.GaussianParams(w, false), 0, dst.Size())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dosas.GaussianDigestResult(res.Output); err != nil {
		t.Fatal(err)
	}
	// Non-size-preserving ops are refused.
	if _, _, err := f.TransformTo("xf/bad", "sum8", nil); err == nil {
		t.Error("sum8 transform accepted")
	}
}

func TestPublicReplication(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 3})
	fs := connect(t, c, dosas.DOSAS)
	f, err := fs.Create("rep/pub", dosas.CreateOptions{StripeSize: 8192, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.Replicas() != 2 {
		t.Fatalf("replicas = %d", f.Replicas())
	}
	data := workload.RandomBytes(200_000, 4)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("rep/pub")
	if err != nil || fi.Replicas != 2 {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("replicated round trip: %v", err)
	}
	// Over-replication is rejected.
	if _, err := fs.Create("rep/toomany", dosas.CreateOptions{Width: 2, Replicas: 3}); err == nil {
		t.Error("replicas > width accepted")
	}
}

func TestPublicVerifyAndRepair(t *testing.T) {
	dir := t.TempDir()
	c := startCluster(t, dosas.Options{DataServers: 2, DataDir: dir})
	fs := connect(t, c, dosas.DOSAS)
	f, err := fs.Create("vr/x", dosas.CreateOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	data := workload.RandomBytes(300_000, 6)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Verify("vr/x", true)
	if err != nil || !rep.OK() {
		t.Fatalf("verify: %+v, %v", rep, err)
	}
	// Corrupt one replica stream directly on disk, then detect and
	// repair through the public API.
	matches, err := filepathGlob(dir)
	if err != nil || len(matches) == 0 {
		t.Fatalf("no replica object files found: %v", err)
	}
	// Flip a byte in some stream file that belongs to a replica (tagged
	// handles are huge, so their hex names start with a replica tag).
	corrupted := false
	for _, m := range matches {
		if strings.Contains(m, "h01") { // replica 1 tag (r<<56)
			raw, err := os.ReadFile(m)
			if err != nil || len(raw) == 0 {
				continue
			}
			raw[len(raw)/2] ^= 0xFF
			if err := os.WriteFile(m, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Skip("no replica stream file found to corrupt")
	}
	rep, err = fs.Verify("vr/x", true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("verify missed on-disk corruption")
	}
	rep, err = fs.Repair("vr/x")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("repair failed: %v", rep.Issues)
	}
}

// filepathGlob lists all stripe object files under a cluster data dir.
func filepathGlob(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && (strings.HasSuffix(path, ".dat") || strings.HasSuffix(path, ".ext")) {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

func TestPublicFilterImageStriped(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 3})
	fs := connect(t, c, dosas.DOSAS)
	const w = 256
	img := workload.SyntheticImage(w, 1024, 8) // 256 KiB over 4 stripes
	f, err := fs.Create("img/pub", dosas.CreateOptions{StripeSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(img, 0); err != nil {
		t.Fatal(err)
	}
	got, err := f.FilterImage(w)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: a width-1 copy filtered by the plain full-image kernel.
	ref, err := fs.Create("img/pub-ref", dosas.CreateOptions{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.WriteAt(img, 0); err != nil {
		t.Fatal(err)
	}
	res, err := ref.ReadEx("gaussian2d", dosas.GaussianParams(w, true), 0, ref.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, res.Output) {
		t.Fatal("striped FilterImage disagrees with single-node filter")
	}
}

func TestPublicTraceDump(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 1, Policy: dosas.AlwaysAccept})
	fs := connect(t, c, dosas.AS)
	f, err := fs.Create("tr/x", dosas.CreateOptions{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(workload.RandomBytes(10_000, 1), 0)
	if _, err := f.ReadEx("sum8", nil, 0, f.Size()); err != nil {
		t.Fatal(err)
	}
	dump, err := c.TraceDump(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"arrive", "admit", "start", "complete", "op=sum8"} {
		if !strings.Contains(dump, want) {
			t.Errorf("trace missing %q:\n%s", want, dump)
		}
	}
	if _, err := c.TraceDump(9); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestOpsListsKernels(t *testing.T) {
	ops := dosas.Ops()
	if len(ops) < 8 {
		t.Fatalf("ops = %v", ops)
	}
}

func TestCalibrateProducesPositiveRate(t *testing.T) {
	rate, err := dosas.Calibrate("sum8", 1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("rate = %v", rate)
	}
}

// TestPublicZeroCopyReadPath reads a disk-backed file over real TCP under
// both framings and checks the serving-path accounting: bulk reads go out
// by reference (sendfile on Linux), not through the staged-copy path.
func TestPublicZeroCopyReadPath(t *testing.T) {
	for _, tc := range []struct {
		name string
		mux  bool
	}{{"mux", true}, {"ordered", false}} {
		t.Run(tc.name, func(t *testing.T) {
			c := startCluster(t, dosas.Options{
				DataServers: 1, DataDir: t.TempDir(),
				TCP: true, DisableMux: !tc.mux,
			})
			fs := connect(t, c, dosas.DOSAS)
			f, err := fs.Create("zc/x")
			if err != nil {
				t.Fatal(err)
			}
			data := workload.RandomBytes(1<<20, 11)
			if _, err := f.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			if _, err := f.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("zero-copy read returned wrong bytes")
			}
			st := c.Stats()["data-0"]
			if copied := st.Counter("data.bytes_copied"); copied != 0 {
				t.Errorf("data.bytes_copied = %d, want 0 (bulk read should serve by reference)", copied)
			}
			if runtime.GOOS == "linux" {
				if sf := st.Counter("wire.sendfile_bytes"); sf < int64(len(data)) {
					t.Errorf("wire.sendfile_bytes = %d, want >= %d", sf, len(data))
				}
			}
		})
	}
}

// TestPublicCopyReadPath: the -read-path copy escape hatch serves the
// same bytes through staged buffers, and the copies are visible in the
// counters — the A/B the readpath benchmark relies on.
func TestPublicCopyReadPath(t *testing.T) {
	c := startCluster(t, dosas.Options{
		DataServers: 1, DataDir: t.TempDir(),
		TCP: true, PlainReadPath: true,
	})
	fs := connect(t, c, dosas.DOSAS)
	f, err := fs.Create("cp/x")
	if err != nil {
		t.Fatal(err)
	}
	data := workload.RandomBytes(1<<20, 12)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("copy-path read returned wrong bytes")
	}
	st := c.Stats()["data-0"]
	if copied := st.Counter("data.bytes_copied"); copied < int64(len(data)) {
		t.Errorf("data.bytes_copied = %d, want >= %d", copied, len(data))
	}
	if sf := st.Counter("wire.sendfile_bytes"); sf != 0 {
		t.Errorf("wire.sendfile_bytes = %d, want 0 on the copy path", sf)
	}
}
