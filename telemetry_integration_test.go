package dosas_test

// Acceptance test for the continuous-telemetry pipeline: a contended run
// on a live cluster must (a) show the bounce rate rising in
// Cluster.Series, (b) degrade Cluster.Health on the saturated node, and
// (c) capture exactly one slow-request flight bundle — with a stitched
// cross-node timeline and the client's telemetry window — retrievable
// both in-process and from the on-disk journal dosasctl slow reads.

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dosas"
)

// stormRead fires n concurrent full-file sum8 reads and waits for all.
func stormRead(t *testing.T, fs *dosas.FS, name string, n int, length uint64) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := fs.Open(name)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.ReadEx("sum8", nil, 0, length); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestTelemetryContendedRun reproduces the contention example's storm
// (slow sum8 kernel, shaped link) on a Dynamic cluster and checks the
// sampler saw the bounce rate rise from zero.
func TestTelemetryContendedRun(t *testing.T) {
	orig := dosas.RateFor("sum8")
	dosas.SetRate("sum8", 15e6) // slow kernel: break-even ~2 concurrent requests
	defer dosas.SetRate("sum8", orig)

	c := startCluster(t, dosas.Options{
		DataServers:   1,
		Policy:        dosas.Dynamic,
		LinkRate:      30e6,
		Pace:          true,
		TelemetryTick: 2 * time.Millisecond,
	})
	fs, err := c.ConnectClient(dosas.ClientOptions{Scheme: dosas.DOSAS, Pace: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Close)

	const reqBytes = 1 << 20
	writeTestFile(t, fs, "contend.bin", reqBytes)
	time.Sleep(20 * time.Millisecond) // let the sampler record a quiet baseline

	var bounced int64
	for round := 0; round < 5 && bounced == 0; round++ {
		stormRead(t, fs, "contend.bin", 8, reqBytes)
		bounced = c.DecisionMetrics().Bounced
	}
	if bounced == 0 {
		t.Fatalf("storm never bounced a request: %+v", c.DecisionMetrics())
	}
	time.Sleep(10 * time.Millisecond) // a few ticks to sample the post-storm rate

	series := c.Series(0)
	if len(series) == 0 {
		t.Fatal("Cluster.Series returned no nodes")
	}
	var bounceRate dosas.Series
	for _, s := range series["data-0"] {
		if s.Name == "bounce.rate" {
			bounceRate = s
		}
	}
	if len(bounceRate.Points) < 2 {
		t.Fatalf("data-0 bounce.rate series too short: %d points", len(bounceRate.Points))
	}
	first, last := bounceRate.Points[0].Value, bounceRate.Last().Value
	if first != 0 {
		t.Fatalf("bounce.rate baseline = %v, want 0", first)
	}
	if last <= 0 {
		t.Fatalf("bounce.rate never rose: first=%v last=%v max=%v", first, last, bounceRate.Max())
	}
}

// TestHealthDegradesUnderSaturation saturates an AlwaysAccept node's
// active queue and checks the health sweep reports it degraded.
func TestHealthDegradesUnderSaturation(t *testing.T) {
	orig := dosas.RateFor("sum8")
	dosas.SetRate("sum8", 15e6)
	defer dosas.SetRate("sum8", orig)

	c := startCluster(t, dosas.Options{
		DataServers:   1,
		Policy:        dosas.AlwaysAccept,
		Pace:          true,
		TelemetryTick: 2 * time.Millisecond,
	})
	fs := connect(t, c, dosas.AS)

	const reqBytes = 1 << 20
	writeTestFile(t, fs, "saturate.bin", reqBytes)

	for _, r := range c.Health() {
		if !r.Ready {
			t.Fatalf("node %s degraded before load: %+v", r.Node, r)
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		stormRead(t, fs, "saturate.bin", 16, reqBytes)
	}()

	degraded := false
	deadline := time.Now().Add(10 * time.Second)
	for !degraded && time.Now().Before(deadline) {
		for _, r := range c.Health() {
			if r.Role == "data" && !r.Ready {
				degraded = true
				for _, chk := range r.Checks {
					if !chk.OK && !strings.Contains(chk.Name, "queue") {
						t.Errorf("unexpected failing check %q: %s", chk.Name, chk.Detail)
					}
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	<-done
	if !degraded {
		t.Fatal("data node never reported degraded while its queue was saturated")
	}
}

// TestSlowRequestFlightCapture arms the flight recorder with an absolute
// threshold, issues fast reads below it and one deliberately slow read
// above it, and checks exactly one bundle — stitched timeline, telemetry
// window — lands in the journal and in the on-disk directory dosasctl
// slow reads.
func TestSlowRequestFlightCapture(t *testing.T) {
	orig := dosas.RateFor("sum8")
	dosas.SetRate("sum8", 15e6)
	defer dosas.SetRate("sum8", orig)

	c := startCluster(t, dosas.Options{
		DataServers:   1,
		Policy:        dosas.AlwaysAccept,
		Pace:          true,
		TelemetryTick: 2 * time.Millisecond,
	})
	slowDir := t.TempDir()
	fs, err := c.ConnectClient(dosas.ClientOptions{
		Scheme:        dosas.DOSAS,
		Pace:          true,
		SlowThreshold: 20 * time.Millisecond,
		SlowDir:       slowDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Close)

	const reqBytes = 1 << 20
	f := writeTestFile(t, fs, "slow.bin", reqBytes)

	// Fast reads stay under the threshold: 16 KiB at 15 MB/s is ~1 ms.
	for i := 0; i < 3; i++ {
		if _, err := f.ReadEx("sum8", nil, 0, 16<<10); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.SlowBundles(); len(got) != 0 {
		t.Fatalf("fast reads captured %d bundles, want 0", len(got))
	}

	// The full megabyte takes >=33 ms bounced and ~66 ms on-storage —
	// over the threshold either way.
	res, err := f.ReadEx("sum8", nil, 0, reqBytes)
	if err != nil {
		t.Fatal(err)
	}

	bundles := fs.SlowBundles()
	if len(bundles) != 1 {
		t.Fatalf("got %d flight bundles, want exactly 1", len(bundles))
	}
	b := bundles[0]
	if b.TraceID != res.TraceID {
		t.Fatalf("bundle trace %d, want %d", b.TraceID, res.TraceID)
	}
	if b.Reason != "absolute" {
		t.Fatalf("bundle reason %q, want absolute", b.Reason)
	}
	var sawClient, sawStorage bool
	for _, e := range b.Timeline {
		if e.TraceID != res.TraceID {
			t.Fatalf("stitched event from foreign trace: %+v", e)
		}
		switch {
		case e.Node == "client":
			sawClient = true
		case strings.HasPrefix(e.Node, "data-"):
			sawStorage = true
		}
	}
	if !sawClient || !sawStorage {
		t.Fatalf("timeline not stitched across nodes (client=%v storage=%v, %d events)",
			sawClient, sawStorage, len(b.Timeline))
	}
	if len(b.Series) == 0 {
		t.Fatal("bundle carries no telemetry window")
	}

	disk, err := dosas.ReadSlowBundles(slowDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(disk) != 1 || disk[0].TraceID != b.TraceID {
		t.Fatalf("on-disk journal = %d bundles (trace %d), want the captured one",
			len(disk), b.TraceID)
	}
	if out := dosas.FormatSlowBundle(disk[0]); !strings.Contains(out, "timeline:") ||
		!strings.Contains(out, "telemetry window:") {
		t.Fatalf("formatted bundle missing sections:\n%s", out)
	}
}
