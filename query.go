package dosas

import (
	"fmt"
	"sort"
	"time"

	"dosas/internal/telemetry"
	"dosas/internal/tsdb"
	"dosas/internal/wire"
)

// RangeQuery parameterises a durable telemetry range query against the
// cluster's node archives (Options.ArchiveDir / -archive-dir). Unlike
// Series, which reads the in-memory rings, a range query reads history
// that survives restarts and reaches back to the archives' retention
// horizon.
type RangeQuery struct {
	// Name is the series to query, e.g. "queue.depth".
	Name string
	// From and Until bound the window (inclusive). A zero From means
	// the beginning of archived history; a zero Until means now.
	From, Until time.Time
	// Step, when positive, reduces each node's answer to per-step
	// bucket means aligned to the epoch — the reduction happens on the
	// serving node, so only the buckets cross the wire.
	Step time.Duration
	// Agg, when set, additionally merges the step-aligned per-node
	// series into one cluster series: "avg", "min", "max", "sum", or
	// "last" (the value of the last node in sweep order reporting in
	// that bucket). Aggregation needs a shared time base, so a zero
	// Step is promoted to one second.
	Agg string
	// Node, when set, restricts the sweep to that one node — the
	// client-side layout name ("meta", "data-0", …) or, over the wire,
	// the name the daemon reports ("data@host:port", as query output
	// shows).
	Node string
}

// stepNano resolves the effective bucket width: an explicit Step wins;
// aggregation without one gets a one-second default; otherwise raw.
func (q RangeQuery) stepNano() int64 {
	if q.Step > 0 {
		return int64(q.Step)
	}
	if q.Agg != "" {
		return int64(time.Second)
	}
	return 0
}

// window resolves the query bounds against the current time.
func (q RangeQuery) window(now time.Time) (fromNano, untilNano int64) {
	if !q.From.IsZero() {
		fromNano = q.From.UnixNano()
	}
	untilNano = now.UnixNano()
	if !q.Until.IsZero() {
		untilNano = q.Until.UnixNano()
	}
	return fromNano, untilNano
}

// validAggs names the cross-node aggregation functions Query accepts.
var validAggs = map[string]bool{"": true, "avg": true, "min": true, "max": true, "sum": true, "last": true}

// NodeSeries is one node's slice of a range-query answer.
type NodeSeries struct {
	Node   string        `json:"node"`
	Points []SeriesPoint `json:"points,omitempty"`
	// EarliestNano is the node archive's retention horizon: samples
	// older than this have been pruned (0 when the archive is empty or
	// the node predates the archive plane). A query window reaching
	// before it is answered as completely as retention allows.
	EarliestNano int64 `json:"earliest,omitempty"`
}

// QueryResult is a range query's answer: the per-node series in sweep
// order (metadata server first, then storage nodes), plus the merged
// cluster series when an aggregation was requested.
type QueryResult struct {
	Name string `json:"name"`
	// Nodes holds each swept node's step-aligned series. Nodes running
	// without an archive answer with no points; unreachable nodes are
	// absent entirely (they surface in Health).
	Nodes []NodeSeries `json:"nodes"`
	// Agg and Aggregated carry the cross-node merge when requested.
	Agg        string        `json:"agg,omitempty"`
	Aggregated []SeriesPoint `json:"aggregated,omitempty"`
}

// aggregateNodes merges step-aligned per-node series into one cluster
// series per the named function. Buckets are matched by timestamp;
// nodes missing a bucket simply don't contribute to it.
func aggregateNodes(nodes []NodeSeries, agg string) []SeriesPoint {
	if agg == "" {
		return nil
	}
	type cell struct {
		sum, min, max, last float64
		n                   int
	}
	cells := make(map[int64]*cell)
	for _, ns := range nodes {
		for _, p := range ns.Points {
			c := cells[p.UnixNano]
			if c == nil {
				c = &cell{min: p.Value, max: p.Value}
				cells[p.UnixNano] = c
			}
			if p.Value < c.min {
				c.min = p.Value
			}
			if p.Value > c.max {
				c.max = p.Value
			}
			c.sum += p.Value
			c.last = p.Value
			c.n++
		}
	}
	if len(cells) == 0 {
		return nil
	}
	times := make([]int64, 0, len(cells))
	for t := range cells {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := make([]SeriesPoint, 0, len(times))
	for _, t := range times {
		c := cells[t]
		var v float64
		switch agg {
		case "min":
			v = c.min
		case "max":
			v = c.max
		case "sum":
			v = c.sum
		case "last":
			v = c.last
		default: // avg
			v = c.sum / float64(c.n)
		}
		out = append(out, SeriesPoint{UnixNano: t, Value: v})
	}
	return out
}

// Query answers a range query from the cluster's node archives
// in-process — the durable counterpart of Series. It runs through the
// same reduction the wire path uses, so the answer matches what
// dosasctl query sees.
func (c *Cluster) Query(q RangeQuery) (QueryResult, error) {
	if !validAggs[q.Agg] {
		return QueryResult{}, fmt.Errorf("dosas: unknown aggregation %q (want avg, min, max, sum or last)", q.Agg)
	}
	fromNano, untilNano := q.window(time.Now())
	res := QueryResult{Name: q.Name, Agg: q.Agg}
	type src struct {
		node string
		a    *tsdb.Archive
	}
	srcs := []src{{"meta", c.metaArchive}}
	for i, a := range c.archives {
		srcs = append(srcs, src{fmt.Sprintf("data-%d", i), a})
	}
	for _, s := range srcs {
		if q.Node != "" && q.Node != s.node {
			continue
		}
		points, err := s.a.Query(q.Name, fromNano, untilNano)
		if err != nil {
			return res, fmt.Errorf("dosas: %s: %w", s.node, err)
		}
		points = telemetry.Downsample(points, q.stepNano())
		res.Nodes = append(res.Nodes, NodeSeries{Node: s.node, Points: points, EarliestNano: s.a.Earliest()})
	}
	res.Aggregated = aggregateNodes(res.Nodes, q.Agg)
	return res, nil
}

// Query sweeps every node's durable telemetry archive over the wire and
// assembles the range-query answer. Unreachable nodes and nodes
// predating the archive plane are skipped for a deterministic partial
// result (they surface in Health); decode failures are reported.
func (fs *FS) Query(q RangeQuery) (QueryResult, error) {
	if !validAggs[q.Agg] {
		return QueryResult{}, fmt.Errorf("dosas: unknown aggregation %q (want avg, min, max, sum or last)", q.Agg)
	}
	fromNano, untilNano := q.window(time.Now())
	res := QueryResult{Name: q.Name, Agg: q.Agg}
	for _, n := range fs.nodeAddrs() {
		resp, err := fs.pc.Pool().Call(n.addr, &wire.RangeQueryReq{
			Name: q.Name, FromNano: fromNano, ToNano: untilNano, StepNano: q.stepNano(),
		})
		if err != nil {
			continue
		}
		rq, ok := resp.(*wire.RangeQueryResp)
		if !ok {
			return res, fmt.Errorf("dosas: unexpected range-query response %v", resp.Type())
		}
		series, err := telemetry.DecodeSeries(rq.Series)
		if err != nil {
			return res, fmt.Errorf("dosas: %s: %w", n.name, err)
		}
		name := rq.Node
		if name == "" {
			name = n.name
		}
		// The filter accepts either the client-side layout name or the
		// name the node answered with — daemons report their configured
		// identity ("data@host:port"), which is what query output shows.
		if q.Node != "" && q.Node != n.name && q.Node != name {
			continue
		}
		ns := NodeSeries{Node: name, EarliestNano: rq.EarliestNano}
		for _, s := range series {
			if s.Name == q.Name {
				ns.Points = s.Points
			}
		}
		res.Nodes = append(res.Nodes, ns)
	}
	res.Aggregated = aggregateNodes(res.Nodes, q.Agg)
	return res, nil
}
