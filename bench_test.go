package dosas_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation and substrate micro-benchmarks. Simulated experiments report
// the modelled execution time as "sim-sec/run" (the y-axis of the paper's
// figures); live benchmarks measure wall-clock time on an in-process
// cluster. cmd/dosas-bench prints the same data as labelled rows.

import (
	"fmt"
	"testing"

	"dosas"
	"dosas/internal/core"
	"dosas/internal/kernels"
	"dosas/internal/sim"
	"dosas/internal/workload"
)

// simPoint runs one simulated experiment point under b.N and reports the
// modelled makespan and achieved bandwidth.
func simPoint(b *testing.B, scheme core.Scheme, n int, bytes uint64, op string) {
	b.Helper()
	var m sim.Metrics
	var err error
	for i := 0; i < b.N; i++ {
		m, err = sim.Run(sim.Config{
			Scheme: scheme, Requests: n, BytesPerRequest: bytes, Op: op,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Makespan, "sim-sec/run")
	b.ReportMetric(m.Bandwidth/1e6, "sim-MB/s")
}

// figure runs a TS/AS(/DOSAS) sweep across the paper's request scales.
func figure(b *testing.B, schemes []core.Scheme, bytes uint64, op string) {
	b.Helper()
	for _, scheme := range schemes {
		for _, n := range sim.PaperScales {
			b.Run(fmt.Sprintf("%s/n=%d", scheme, n), func(b *testing.B) {
				simPoint(b, scheme, n, bytes, op)
			})
		}
	}
}

var tsas = []core.Scheme{core.SchemeTS, core.SchemeAS}

// BenchmarkTable3KernelRates regenerates Table III: the per-core
// processing rate of each kernel on this host, in MB/s.
func BenchmarkTable3KernelRates(b *testing.B) {
	cases := []struct {
		op     string
		params []byte
	}{
		{"sum8", nil},
		{"gaussian2d", kernels.GaussianParams(4096, false)},
		{"sum64", nil},
		{"minmax", nil},
		{"moments", nil},
		{"histogram", nil},
		{"count", []byte("needle")},
		{"wordcount", nil},
		{"downsample", kernels.DownsampleParams(16)},
	}
	data := workload.RandomBytes(8<<20, 1)
	for _, tc := range cases {
		b.Run(tc.op, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				k, err := kernels.New(tc.op)
				if err != nil {
					b.Fatal(err)
				}
				if err := k.Configure(tc.params); err != nil {
					b.Fatal(err)
				}
				if err := k.Process(data); err != nil {
					b.Fatal(err)
				}
				if _, err := k.Result(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2GaussianContention is Figure 2: Gaussian under TS vs AS,
// 128 MB per request — AS degrades past 4 concurrent requests.
func BenchmarkFig2GaussianContention(b *testing.B) {
	figure(b, tsas, 128*sim.MB, "gaussian2d")
}

// BenchmarkFig4Gaussian128MB is Figure 4 (the paper re-plots Figure 2's
// configuration in its results section).
func BenchmarkFig4Gaussian128MB(b *testing.B) {
	figure(b, tsas, 128*sim.MB, "gaussian2d")
}

// BenchmarkFig5Gaussian512MB is Figure 5: the crossover at 512 MB
// requests.
func BenchmarkFig5Gaussian512MB(b *testing.B) {
	figure(b, tsas, 512*sim.MB, "gaussian2d")
}

// BenchmarkFig6Sum128MB is Figure 6: SUM under TS vs AS — AS wins at
// every scale.
func BenchmarkFig6Sum128MB(b *testing.B) {
	figure(b, tsas, 128*sim.MB, "sum8")
}

// BenchmarkTable4SchedulerAccuracy is Table IV: the scheduling
// algorithm's decisions against noisy practice across all 56 situations.
func BenchmarkTable4SchedulerAccuracy(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		sits, err := sim.ScheduleAccuracy(int64(2012 + i))
		if err != nil {
			b.Fatal(err)
		}
		acc = sim.AccuracyRate(sits)
	}
	b.ReportMetric(acc*100, "accuracy-%")
}

// BenchmarkFig7DOSAS128MB through BenchmarkFig10DOSAS1GB are Figures
// 7–10: DOSAS vs AS vs TS execution time at each request size.
func BenchmarkFig7DOSAS128MB(b *testing.B) {
	figure(b, sim.PaperSchemes, 128*sim.MB, "gaussian2d")
}

func BenchmarkFig8DOSAS256MB(b *testing.B) {
	figure(b, sim.PaperSchemes, 256*sim.MB, "gaussian2d")
}

func BenchmarkFig9DOSAS512MB(b *testing.B) {
	figure(b, sim.PaperSchemes, 512*sim.MB, "gaussian2d")
}

func BenchmarkFig10DOSAS1GB(b *testing.B) {
	figure(b, sim.PaperSchemes, 1024*sim.MB, "gaussian2d")
}

// BenchmarkFig11Bandwidth256MB and BenchmarkFig12Bandwidth512MB are
// Figures 11–12: achieved bandwidth per scheme (the sim-MB/s metric).
func BenchmarkFig11Bandwidth256MB(b *testing.B) {
	figure(b, sim.PaperSchemes, 256*sim.MB, "gaussian2d")
}

func BenchmarkFig12Bandwidth512MB(b *testing.B) {
	figure(b, sim.PaperSchemes, 512*sim.MB, "gaussian2d")
}

// BenchmarkSolvers is the solver ablation: the paper's exhaustive 2^k
// enumeration vs the closed-form MaxGain optimum, by queue depth.
func BenchmarkSolvers(b *testing.B) {
	env := core.Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	mkReqs := func(k int) []core.Request {
		reqs := make([]core.Request, k)
		for i := range reqs {
			reqs[i] = core.Request{
				ID:          uint64(i + 1),
				Bytes:       uint64(64+i*13%512) * sim.MB,
				ResultBytes: 29,
			}
		}
		return reqs
	}
	for _, k := range []int{4, 8, 12, 16, 20} {
		reqs := mkReqs(k)
		b.Run(fmt.Sprintf("exhaustive/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Exhaustive{}.Solve(reqs, env)
			}
		})
	}
	for _, k := range []int{4, 20, 100, 1000} {
		reqs := mkReqs(k)
		b.Run(fmt.Sprintf("maxgain/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MaxGain{}.Solve(reqs, env)
			}
		})
	}
}

// BenchmarkMigrationAblation compares DOSAS with and without
// interrupt-and-migrate at a heavily contended point.
func BenchmarkMigrationAblation(b *testing.B) {
	for _, mig := range []bool{true, false} {
		mig := mig
		b.Run(fmt.Sprintf("migration=%v", mig), func(b *testing.B) {
			var m sim.Metrics
			var err error
			for i := 0; i < b.N; i++ {
				m, err = sim.Run(sim.Config{
					Scheme: core.SchemeDOSAS, Requests: 32,
					BytesPerRequest: 128 * sim.MB, Op: "gaussian2d",
					Migration: &mig,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.Makespan, "sim-sec/run")
		})
	}
}

// BenchmarkMixedSizes is the heterogeneous ablation: request sizes spread
// over an order of magnitude, where mixed (non-all-or-nothing) schedules
// win.
func BenchmarkMixedSizes(b *testing.B) {
	env := core.Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	reqs := []core.Request{
		{ID: 1, Bytes: 32 * sim.MB, ResultBytes: 29, StorageRate: 860e6, ComputeRate: 860e6},
		{ID: 2, Bytes: 128 * sim.MB, ResultBytes: 29},
		{ID: 3, Bytes: 512 * sim.MB, ResultBytes: 29},
		{ID: 4, Bytes: 1024 * sim.MB, ResultBytes: 29},
		{ID: 5, Bytes: 1024 * sim.MB, ResultBytes: 29},
	}
	var t float64
	for i := 0; i < b.N; i++ {
		a := core.MaxGain{}.Solve(reqs, env)
		t = env.TotalTime(reqs, a)
	}
	b.ReportMetric(t, "sim-sec/run")
	b.ReportMetric(env.TimeAllActive(reqs), "sim-sec-AS")
	b.ReportMetric(env.TimeAllNormal(reqs), "sim-sec-TS")
}

// BenchmarkSkewAblation sweeps hot-spot load placement over a 4-node
// deployment.
func BenchmarkSkewAblation(b *testing.B) {
	for _, skew := range []float64{0, 0.5, 0.9} {
		skew := skew
		for _, scheme := range sim.PaperSchemes {
			scheme := scheme
			b.Run(fmt.Sprintf("%s/skew=%.1f", scheme, skew), func(b *testing.B) {
				var m sim.Metrics
				var err error
				for i := 0; i < b.N; i++ {
					m, err = sim.Run(sim.Config{
						Scheme: scheme, Requests: 32, BytesPerRequest: 128 * sim.MB,
						Op: "gaussian2d", StorageNodes: 4, Skew: skew, Seed: 11,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(m.Makespan, "sim-sec/run")
			})
		}
	}
}

// BenchmarkTransform measures the active write-back path end to end on a
// live cluster: a full-image Gaussian filtered in place on the storage
// node.
func BenchmarkTransform(b *testing.B) {
	cluster, err := dosas.StartCluster(dosas.Options{DataServers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Connect(dosas.AS)
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	const w, h = 1024, 1024
	f, err := fs.Create("bench/xf", dosas.CreateOptions{Width: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.WriteAt(workload.SyntheticImage(w, h, 1), 0); err != nil {
		b.Fatal(err)
	}
	params := dosas.GaussianParams(w, true)
	b.SetBytes(w * h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _, err := f.TransformTo(fmt.Sprintf("bench/xf-out-%d", i), "gaussian2d", params)
		if err != nil {
			b.Fatal(err)
		}
		_ = dst
	}
}

// BenchmarkLiveSchemes runs the three schemes end to end on a real
// in-process cluster (4 requests × 2 MB against one storage node),
// measuring wall-clock time with real kernels and real bytes.
func BenchmarkLiveSchemes(b *testing.B) {
	for _, scheme := range []dosas.Scheme{dosas.TS, dosas.AS, dosas.DOSAS} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			cluster, err := dosas.StartCluster(dosas.Options{DataServers: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			fs, err := cluster.Connect(scheme)
			if err != nil {
				b.Fatal(err)
			}
			defer fs.Close()
			const reqBytes = 2 << 20
			f, err := fs.Create("bench/live", dosas.CreateOptions{Width: 1})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.WriteAt(workload.RandomBytes(4*reqBytes, 1), 0); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(4 * reqBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := make(chan error, 4)
				for r := 0; r < 4; r++ {
					go func(r int) {
						_, err := f.ReadEx("sum8", nil, uint64(r*reqBytes), reqBytes)
						done <- err
					}(r)
				}
				for r := 0; r < 4; r++ {
					if err := <-done; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkPFSThroughput measures raw striped read/write throughput of
// the parallel file system substrate over the in-process transport.
func BenchmarkPFSThroughput(b *testing.B) {
	cluster, err := dosas.StartCluster(dosas.Options{DataServers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Connect(dosas.TS)
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	const size = 8 << 20
	data := workload.RandomBytes(size, 2)
	f, err := fs.Create("bench/pfs", dosas.CreateOptions{StripeSize: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("write", func(b *testing.B) {
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			if _, err := f.WriteAt(data, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		b.SetBytes(size)
		buf := make([]byte, size)
		for i := 0; i < b.N; i++ {
			if _, err := f.ReadAt(buf, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelCheckpoint measures the cost of the migration mechanism:
// checkpointing and restoring each kernel mid-stream.
func BenchmarkKernelCheckpoint(b *testing.B) {
	for _, op := range []string{"sum8", "gaussian2d", "histogram"} {
		op := op
		b.Run(op, func(b *testing.B) {
			params := []byte(nil)
			if op == "gaussian2d" {
				params = kernels.GaussianParams(1024, false)
			}
			k, err := kernels.New(op)
			if err != nil {
				b.Fatal(err)
			}
			if err := k.Configure(params); err != nil {
				b.Fatal(err)
			}
			if err := k.Process(workload.RandomBytes(1<<20, 3)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				state, err := k.Checkpoint()
				if err != nil {
					b.Fatal(err)
				}
				k2, _ := kernels.New(op)
				k2.Configure(params)
				if err := k2.Restore(state); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
