# Developer entry points. `make check` is the full gate: vet plus the
# race-enabled test suite. CI and pre-commit should run exactly that.

GO ?= go

.PHONY: all build test vet race race-observability race-transport race-alerts race-store race-tenant race-tsdb race-qos replay-determinism check bench bench-readpath bench-telemetry bench-mux bench-tenant bench-archive bench-qos bench-paper clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Focused race gate for the observability stack: the telemetry sampler,
# trace recorder, metrics registry and decision-audit ring are the
# packages mutated from every goroutine, so they fail first and fastest
# under -race. The wire package rides along for the decode fuzz
# (testing/quick) suite.
race-observability:
	$(GO) test -race ./internal/telemetry/ ./internal/trace/ ./internal/metrics/ ./internal/wire/ ./internal/audit/

# Focused race gate for the transport stack: the mux writer's write
# token, the per-connection demux read loops, and the pool's shared-
# connection management are the RPC layer's concurrency hot spots. Runs
# the framing fuzz (testing/quick) suites under -race as well.
race-transport:
	$(GO) test -race ./internal/wire/ ./internal/transport/ ./internal/pfs/

# Focused race gate for the storage layer: the extent store's size cache
# and refcounted fd cache are hit concurrently by reads, writes,
# truncates, and in-flight zero-copy payloads pinning descriptors; the
# cross-validation suite churns all of them under -race.
race-store:
	$(GO) test -race -run 'TestExtent|TestFDCache|TestFileStore|TestStore' ./internal/pfs/

# Focused race gate for the operational plane: the event-log ring is
# written from every subsystem while dosasctl events tails it, and the
# SLO engine's state machines advance on the sampler goroutine while
# alert fetches read them. The OpenMetrics renderer reads all three.
race-alerts:
	$(GO) test -race ./internal/eventlog/ ./internal/slo/ ./internal/openmetrics/

# Focused race gate for the tenant attribution plane: the per-tenant
# LRU table is bumped on every request from every connection goroutine
# while the telemetry tick reads wait shares and dosasctl sweeps
# snapshots; the queue instrumentation feeding it rides along.
race-tenant:
	$(GO) test -race ./internal/tenant/ ./internal/ioqueue/

# Focused race gate for the telemetry archive: chunk files are appended
# from the sampler tick while queries, pruning, and downsample sealing
# walk the same state; the crash-reopen property tests churn it all
# under -race. The range-query plane (wire codec fuzz, cluster sweep)
# rides along.
race-tsdb:
	$(GO) test -race ./internal/tsdb/ ./internal/telemetry/ ./internal/wire/
	$(GO) test -race -run 'TestQuery|TestFSQuery|TestIncidentReport|TestClusterReport|TestAggregateNodes' .

# Focused race gate for the tail-latency isolation plane: the QoS gate's
# dispatcher binds WDRR elections to slots while cancels withdraw queued
# tickets, the cancel registry races CancelReqs against registration and
# both framings' mid-frame zero-fill, and hedged reads race two replica
# streams (plus server death) over one destination buffer. The latency
# tracker's EWMA/decay state rides along.
race-qos:
	$(GO) test -race -run 'TestQoS|TestCancel|TestServerCancel|TestHedge|TestPrimary|TestReplicaOrder|TestLatency|TestHedgeDelay|TestSizeClass|TestWDRR|TestMetaStorm|TestNoCredit' ./internal/pfs/ ./internal/ioqueue/
	$(GO) test -race -run 'TestWaitShare|TestReadReqReqID|TestNamespaceTenant' ./internal/tenant/ ./internal/wire/

# Counterfactual replay must be byte-deterministic: the same decision log
# and policy set produce the same report JSON on every run (no map
# iteration, no wall clock in the scoring path). Replays the committed
# golden log twice and diffs the outputs byte for byte.
replay-determinism:
	$(GO) run ./cmd/dosasctl whatif -log internal/audit/testdata/golden_log.json -json > /tmp/dosas-replay-a.json
	$(GO) run ./cmd/dosasctl whatif -log internal/audit/testdata/golden_log.json -json > /tmp/dosas-replay-b.json
	cmp /tmp/dosas-replay-a.json /tmp/dosas-replay-b.json
	@echo "replay-determinism: OK (byte-identical reports)"

check: vet race-observability race-transport race-store race-alerts race-tenant race-tsdb race-qos replay-determinism race

# Data-path microbenchmarks (fixed iteration count so runs compare
# across commits) plus the window-vs-serial matrix (writes BENCH_pr2.json).
bench:
	$(GO) test ./internal/pfs/ -run '^$$' -bench 'ReadPath|WritePath' -benchtime 15x -benchmem
	$(GO) run ./cmd/dosas-bench -exp readpath
	$(GO) run ./cmd/dosas-bench -exp noisy-neighbor

# Zero-copy serving A/B: user-space copies per served byte for sendbuf
# vs writev vs sendfile serving (writes BENCH_readpath_zerocopy.json).
bench-readpath:
	$(GO) run ./cmd/dosas-bench -exp readpath-zerocopy

# Telemetry overhead: active read path with samplers off, at the default
# 100ms tick, and at a pathological 1ms tick. The acceptance bar is <1%
# delta between Off and On.
bench-telemetry:
	$(GO) test . -run '^$$' -bench ReadPathTelemetry -benchtime 50x

# Control-message latency under bulk load, multiplexed vs ordered
# framing, plus the bulk-throughput no-regression check (writes
# BENCH_mux.json).
bench-mux:
	$(GO) run ./cmd/dosas-bench -exp mux

# Tenant attribution under contention: aggressor/victim queue-wait
# split, the noisy-neighbor alert, and the attribution plane's A/B
# overhead (writes BENCH_tenant.json).
bench-tenant:
	$(GO) run ./cmd/dosas-bench -exp noisy-neighbor

# Durable telemetry archive: A/B overhead of archiving every sampler
# tick (budget <1%) and restart continuity of the stitched range query
# (writes BENCH_archive.json).
bench-archive:
	$(GO) run ./cmd/dosas-bench -exp archive

# Tail-latency isolation: weighted-fair admission A/B (victim p99 gated
# vs ungated vs uncontended) and the hedged-read/replica-selection
# straggler experiments (writes BENCH_qos.json).
bench-qos:
	$(GO) run ./cmd/dosas-bench -exp qos-isolation
	$(GO) run ./cmd/dosas-bench -exp straggler

# Regenerate the paper's tables/figures (simulated experiments) and the
# live per-scheme decision metrics (BENCH_live.json).
bench-paper:
	$(GO) run ./cmd/dosas-bench

clean:
	$(GO) clean ./...
	rm -f BENCH_*.json
