# Developer entry points. `make check` is the full gate: vet plus the
# race-enabled test suite. CI and pre-commit should run exactly that.

GO ?= go

.PHONY: all build test vet race check bench bench-paper clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

# Data-path microbenchmarks (fixed iteration count so runs compare
# across commits) plus the window-vs-serial matrix (writes BENCH_pr2.json).
bench:
	$(GO) test ./internal/pfs/ -run '^$$' -bench 'ReadPath|WritePath' -benchtime 15x -benchmem
	$(GO) run ./cmd/dosas-bench -exp readpath

# Regenerate the paper's tables/figures (simulated experiments) and the
# live per-scheme decision metrics (BENCH_live.json).
bench-paper:
	$(GO) run ./cmd/dosas-bench

clean:
	$(GO) clean ./...
	rm -f BENCH_*.json
