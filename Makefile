# Developer entry points. `make check` is the full gate: vet plus the
# race-enabled test suite. CI and pre-commit should run exactly that.

GO ?= go

.PHONY: all build test vet race check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

# Regenerate the paper's tables/figures (simulated experiments) and the
# live per-scheme decision metrics (BENCH_live.json).
bench:
	$(GO) run ./cmd/dosas-bench

clean:
	$(GO) clean ./...
	rm -f BENCH_*.json
