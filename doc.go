// Package dosas is a from-scratch implementation of DOSAS — the Dynamic
// Operation Scheduling Active Storage architecture of Chen, Chen and Roth
// (IEEE CLUSTER 2012) — together with every substrate it needs: a
// PVFS2-style parallel file system, a binary wire protocol, pluggable
// transports with link shaping, a library of checkpointable processing
// kernels, and a discrete-event cluster simulator that regenerates the
// paper's evaluation.
//
// Active storage ships analysis computations to the nodes that hold the
// data, returning small results instead of raw bytes. DOSAS adds the
// missing piece for shared production systems: when many processes
// converge on one storage node, its Contention Estimator re-splits the
// work between storage and compute nodes on the fly, so active storage's
// win at low concurrency never becomes a loss at high concurrency.
//
// # Quick start
//
//	cluster, err := dosas.StartCluster(dosas.Options{DataServers: 4})
//	if err != nil { ... }
//	defer cluster.Close()
//
//	fs, err := cluster.Connect(dosas.DOSAS)
//	if err != nil { ... }
//	defer fs.Close()
//
//	f, _ := fs.Create("dataset.bin")
//	f.WriteAt(data, 0)
//	res, _ := f.ReadEx("sum8", nil, 0, f.Size())
//	total := dosas.SumResult(res.Output)
//
// The call either runs the sum on the storage nodes holding the stripes
// (shipping back 8 bytes per node) or — when those nodes are contended —
// transparently falls back to reading the data and summing locally,
// exactly as the application-visible semantics of the paper's
// MPI_File_read_ex. See the examples directory for full programs and
// cmd/dosas-bench for the paper's experiments.
package dosas
