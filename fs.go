package dosas

import (
	"errors"
	"fmt"
	"io"
	"time"

	"dosas/internal/core"
	"dosas/internal/pfs"
)

// Common errors surfaced by the public API.
var (
	// ErrNotFound reports a missing file.
	ErrNotFound = errors.New("dosas: file not found")
	// ErrExists reports a name collision on create.
	ErrExists = errors.New("dosas: file already exists")
)

func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case pfs.IsNotFound(err):
		return fmt.Errorf("%w (%v)", ErrNotFound, err)
	case pfs.IsExists(err):
		return fmt.Errorf("%w (%v)", ErrExists, err)
	default:
		return err
	}
}

// FS is a client of a DOSAS cluster: the parallel file system plus the
// Active Storage Client that serves ReadEx calls.
type FS struct {
	pc     *pfs.Client
	asc    *core.Client
	scheme Scheme
}

// Scheme reports the scheme this client was connected with.
func (fs *FS) Scheme() Scheme { return fs.scheme }

// Close stops the client's telemetry sampler and releases its
// connections.
func (fs *FS) Close() {
	fs.asc.Close()
	fs.pc.Close()
}

// CreateOptions tune file creation.
type CreateOptions struct {
	// StripeSize in bytes; 0 takes the cluster default.
	StripeSize uint32
	// Width is how many storage nodes to stripe over; 0 means all.
	// Width 1 places the whole file on a single node — required for
	// operations without a combiner (e.g. downsample) and for exact
	// Gaussian filtering of whole images.
	Width int
	// Replicas keeps this many copies of every stripe on distinct
	// storage nodes (0 and 1 both mean none). Reads, active reads, and
	// FilterImage fail over to surviving replicas when a node dies;
	// writes go to all copies. Must not exceed the stripe width.
	Replicas int
}

// Create makes a new striped file.
func (fs *FS) Create(name string, opts ...CreateOptions) (*File, error) {
	var o CreateOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	var pf *pfs.File
	var err error
	if o.Replicas > 1 {
		pf, err = fs.pc.CreateReplicated(name, o.StripeSize, o.Width, o.Replicas)
	} else {
		pf, err = fs.pc.Create(name, o.StripeSize, o.Width)
	}
	if err != nil {
		return nil, mapErr(err)
	}
	return &File{fs: fs, pf: pf}, nil
}

// Open looks an existing file up by name.
func (fs *FS) Open(name string) (*File, error) {
	pf, err := fs.pc.Open(name)
	if err != nil {
		return nil, mapErr(err)
	}
	return &File{fs: fs, pf: pf}, nil
}

// FileInfo describes a file.
type FileInfo struct {
	Name       string
	Size       uint64
	ModTime    time.Time
	StripeSize uint32
	Width      int
	Replicas   int
}

// Stat returns metadata for name.
func (fs *FS) Stat(name string) (FileInfo, error) {
	st, err := fs.pc.Stat(name)
	if err != nil {
		return FileInfo{}, mapErr(err)
	}
	return FileInfo{
		Name:       name,
		Size:       st.Size,
		ModTime:    time.Unix(0, st.ModUnixN),
		StripeSize: st.Layout.StripeSize,
		Width:      len(st.Layout.Servers),
		Replicas:   st.Layout.ReplicaCount(),
	}, nil
}

// Remove deletes a file and its stripes.
func (fs *FS) Remove(name string) error { return mapErr(fs.pc.Remove(name)) }

// Issue is one inconsistency found by Verify.
type Issue = pfs.Issue

// VerifyReport summarises a consistency check of one file.
type VerifyReport = pfs.Report

// Verify checks a file's on-cluster consistency: every stripe stream (and
// every replica) must have the length the layout implies; with deep set,
// replica contents are compared byte-for-byte.
func (fs *FS) Verify(name string, deep bool) (*VerifyReport, error) {
	rep, err := fs.pc.Verify(name, deep)
	return rep, mapErr(err)
}

// Repair restores damaged replica streams from an intact copy and returns
// the post-repair verification report.
func (fs *FS) Repair(name string) (*VerifyReport, error) {
	rep, err := fs.pc.Repair(name)
	return rep, mapErr(err)
}

// List returns file names with the given prefix, sorted.
func (fs *FS) List(prefix string) ([]string, error) {
	names, err := fs.pc.List(prefix)
	return names, mapErr(err)
}

// ReadExMany runs one combinable operation over every named file in full
// and combines the outputs into a single result — dataset-wide statistics
// (an ensemble sweep) as one call. Per-file and per-storage-node pieces
// run concurrently under the client's scheme.
func (fs *FS) ReadExMany(names []string, op string, params []byte) (*Result, error) {
	files := make([]*pfs.File, len(names))
	for i, name := range names {
		pf, err := fs.pc.Open(name)
		if err != nil {
			return nil, mapErr(err)
		}
		files[i] = pf
	}
	res, err := fs.asc.ActiveReadMany(files, op, params)
	if err != nil {
		return nil, err
	}
	out := &Result{Completed: res.Completed, Output: res.Output, Elapsed: res.Elapsed, TraceID: res.TraceID}
	for _, p := range res.Parts {
		out.Parts = append(out.Parts, Part{
			Server: p.Server, Bytes: p.Bytes, Where: p.Where, BytesShipped: p.BytesShipped,
		})
	}
	return out, nil
}

// Where reports where an active read part executed.
type Where = core.Where

// Execution sites for Result parts.
const (
	// OnStorage: the kernel ran on the storage node.
	OnStorage = core.OnStorage
	// OnCompute: the request bounced and the kernel ran on the client.
	OnCompute = core.OnCompute
	// Migrated: the kernel was interrupted on the storage node and
	// finished on the client from its checkpoint.
	Migrated = core.Migrated
)

// Part describes one per-storage-node piece of an active read.
type Part struct {
	Server       uint32
	Bytes        uint64
	Where        Where
	BytesShipped uint64
}

// Result is the outcome of ReadEx: the combined kernel output plus
// execution provenance. Completed is always true when ReadEx returns —
// bounced and interrupted parts were finished client-side — mirroring the
// paper's struct result after ASC post-processing.
type Result struct {
	Completed bool
	Output    []byte
	Parts     []Part
	Elapsed   time.Duration
	// TraceID identifies the distributed trace this read produced; feed
	// it to FS.TraceEvents / Cluster.TraceTimeline to reconstruct the
	// cross-node timeline.
	TraceID uint64
}

// BytesShipped totals raw network movement across parts.
func (r *Result) BytesShipped() uint64 {
	var n uint64
	for _, p := range r.Parts {
		n += p.BytesShipped
	}
	return n
}

// File is an open striped file.
type File struct {
	fs  *FS
	pf  *pfs.File
	pos uint64
}

// Name returns the file's name.
func (f *File) Name() string { return f.pf.Name() }

// Size returns the file size as known to this client.
func (f *File) Size() uint64 { return f.pf.Size() }

// StripeWidth reports how many storage nodes the file spans.
func (f *File) StripeWidth() int { return len(f.pf.Layout().Servers) }

// Replicas reports how many copies of each stripe the file keeps.
func (f *File) Replicas() int { return f.pf.Layout().ReplicaCount() }

// WriteAt stores p at offset off.
func (f *File) WriteAt(p []byte, off uint64) (int, error) {
	return f.pf.WriteAt(p, off)
}

// ReadAt fills p from offset off, returning a short count at EOF.
func (f *File) ReadAt(p []byte, off uint64) (int, error) {
	return f.pf.ReadAt(p, off)
}

// Write appends at the file cursor (io.Writer).
func (f *File) Write(p []byte) (int, error) {
	n, err := f.pf.WriteAt(p, f.pos)
	f.pos += uint64(n)
	return n, err
}

// Read reads at the file cursor (io.Reader), returning io.EOF at the end.
func (f *File) Read(p []byte) (int, error) {
	if f.pos >= f.Size() {
		return 0, io.EOF
	}
	n, err := f.pf.ReadAt(p, f.pos)
	f.pos += uint64(n)
	if err == nil && n == 0 {
		return 0, io.EOF
	}
	return n, err
}

// Seek repositions the cursor (io.Seeker).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = int64(f.pos)
	case io.SeekEnd:
		base = int64(f.Size())
	default:
		return 0, fmt.Errorf("dosas: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("dosas: negative seek position")
	}
	f.pos = uint64(np)
	return np, nil
}

// ReadAll reads the whole file.
func (f *File) ReadAll() ([]byte, error) { return f.pf.ReadAll() }

// TransformInfo reports a completed TransformTo.
type TransformInfo struct {
	// BytesWritten is the total output written on the storage nodes.
	BytesWritten uint64
	Elapsed      time.Duration
}

// TransformTo runs a size-preserving operation (e.g. full-image
// "gaussian2d") over the whole file on its storage nodes and writes the
// output to a new file dstName with the identical stripe layout. Neither
// input nor output crosses the network — active write-back. Returns the
// new file.
func (f *File) TransformTo(dstName, op string, params []byte) (*File, TransformInfo, error) {
	dst, res, err := f.fs.asc.Transform(f.pf, dstName, op, params)
	if err != nil {
		return nil, TransformInfo{}, mapErr(err)
	}
	return &File{fs: f.fs, pf: dst}, TransformInfo{
		BytesWritten: res.BytesWritten,
		Elapsed:      res.Elapsed,
	}, nil
}

// FilterImage runs a bit-exact 3×3 Gaussian over the whole file as an
// 8-bit image with the given row width, even when the image is striped
// across many storage nodes: each node filters its stripe bands with
// one-row halos fetched from the neighbouring bands. The stripe size must
// be a multiple of the row width. Returns the full filtered image.
func (f *File) FilterImage(width uint32) ([]byte, error) {
	return f.fs.asc.FilteredImage(f.pf, width)
}

// ReadEx runs operation op with kernel parameters params over the file
// range [off, off+length) — the library form of the paper's
// MPI_File_read_ex. Under the TS scheme the data is read and the kernel
// runs locally; under AS it is offloaded to the storage nodes; under
// DOSAS each storage node's policy decides, and bounced or interrupted
// work completes transparently on the client.
func (f *File) ReadEx(op string, params []byte, off, length uint64) (*Result, error) {
	res, err := f.fs.asc.ActiveRead(f.pf, off, length, op, params)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Completed: res.Completed,
		Output:    res.Output,
		Elapsed:   res.Elapsed,
		TraceID:   res.TraceID,
		Parts:     make([]Part, len(res.Parts)),
	}
	for i, p := range res.Parts {
		out.Parts[i] = Part{
			Server:       p.Server,
			Bytes:        p.Bytes,
			Where:        p.Where,
			BytesShipped: p.BytesShipped,
		}
	}
	return out, nil
}

var (
	_ io.Reader = (*File)(nil)
	_ io.Writer = (*File)(nil)
	_ io.Seeker = (*File)(nil)
)
