package dosas_test

// Testable godoc examples for the public API.

import (
	"fmt"
	"log"

	"dosas"
)

// ExampleStartCluster boots a cluster, stores data, and runs an active sum.
func ExampleStartCluster() {
	cluster, err := dosas.StartCluster(dosas.Options{DataServers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fs, err := cluster.Connect(dosas.DOSAS)
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	f, err := fs.Create("demo/data")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{1, 2, 3, 4}, 0); err != nil {
		log.Fatal(err)
	}
	res, err := f.ReadEx("sum8", nil, 0, f.Size())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dosas.SumResult(res.Output))
	// Output: 10
}

// ExampleFileReadEx shows the paper's MPI-IO-style extended call.
func ExampleFileReadEx() {
	cluster, err := dosas.StartCluster(dosas.Options{DataServers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Connect(dosas.AS)
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	f, err := fs.Create("demo/mpi")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("one two three"), 0); err != nil {
		log.Fatal(err)
	}

	fh, err := dosas.FileOpen(fs, "demo/mpi")
	if err != nil {
		log.Fatal(err)
	}
	var result dosas.ExResult
	var status dosas.Status
	if err := dosas.FileReadEx(fh, &result, int(fh.Size()), dosas.Byte,
		"wordcount", nil, &status); err != nil {
		log.Fatal(err)
	}
	fmt.Println(dosas.CountResult(result.Buf), result.Completed)
	// Output: 3 true
}

// ExampleFS_ReadExMany aggregates one statistic across a whole dataset.
func ExampleFS_ReadExMany() {
	cluster, err := dosas.StartCluster(dosas.Options{DataServers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Connect(dosas.DOSAS)
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	for i, blob := range [][]byte{{1, 1}, {2, 2}, {3}} {
		f, err := fs.Create(fmt.Sprintf("set/part-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt(blob, 0); err != nil {
			log.Fatal(err)
		}
	}
	names, err := fs.List("set/")
	if err != nil {
		log.Fatal(err)
	}
	res, err := fs.ReadExMany(names, "sum8", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dosas.SumResult(res.Output))
	// Output: 9
}
