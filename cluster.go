package dosas

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dosas/internal/audit"
	"dosas/internal/core"
	"dosas/internal/eventlog"
	"dosas/internal/metrics"
	"dosas/internal/openmetrics"
	"dosas/internal/pfs"
	"dosas/internal/slo"
	"dosas/internal/telemetry"
	"dosas/internal/tenant"
	"dosas/internal/trace"
	"dosas/internal/transport"
	"dosas/internal/tsdb"
)

// Scheme selects how clients issue analysis reads — the paper's three
// evaluated schemes.
type Scheme int

// Client schemes.
const (
	// DOSAS requests active I/O and lets each storage node's dynamic
	// policy accept, bounce, or interrupt it (the paper's contribution).
	DOSAS Scheme = iota
	// AS always requests active I/O (classic active storage).
	AS
	// TS never requests active I/O: raw reads plus local compute
	// (traditional storage).
	TS
)

// String names the scheme as the paper abbreviates it.
func (s Scheme) String() string { return s.core().String() }

func (s Scheme) core() core.Scheme {
	switch s {
	case AS:
		return core.SchemeAS
	case TS:
		return core.SchemeTS
	default:
		return core.SchemeDOSAS
	}
}

// Policy selects a storage node's server-side scheduling behaviour.
type Policy int

// Server policies.
const (
	// Dynamic is DOSAS scheduling: the Contention Estimator's policy
	// decides per request.
	Dynamic Policy = iota
	// AlwaysAccept runs every active request on the storage node.
	AlwaysAccept
	// AlwaysBounce rejects every active request.
	AlwaysBounce
)

func (p Policy) mode() core.Mode {
	switch p {
	case AlwaysAccept:
		return core.ModeAlwaysAccept
	case AlwaysBounce:
		return core.ModeAlwaysBounce
	default:
		return core.ModeDynamic
	}
}

// Options configures StartCluster.
type Options struct {
	// DataServers is the number of storage nodes (default 4).
	DataServers int
	// Policy is the storage nodes' scheduling behaviour (default
	// Dynamic).
	Policy Policy
	// Solver names the scheduling algorithm dynamic-mode nodes run:
	// "exhaustive", "maxgain" (default), "all-active" or "all-normal".
	// Ignored by the static policies.
	Solver string
	// StripeSize is the default stripe size for new files (default
	// 64 KiB).
	StripeSize uint32
	// TCP switches from the in-process transport to real TCP loopback
	// sockets (one listener per server).
	TCP bool
	// TCPBasePort, when positive with TCP set, binds the metadata server
	// to 127.0.0.1:TCPBasePort and storage node i to TCPBasePort+1+i.
	// Zero picks ephemeral ports.
	TCPBasePort int
	// LinkRate, when positive, shapes each server's link to this many
	// bytes/second — set 118e6 to emulate the paper's measured Gigabit
	// Ethernet on a fast host.
	LinkRate float64
	// LinkDelay, when positive, adds this one-way propagation delay to
	// every connection in each direction — cross-rack or datacenter-hop
	// latency emulation. Composes with LinkRate.
	LinkDelay time.Duration
	// NetworkBandwidth is what the Contention Estimator assumes for bw;
	// defaults to LinkRate when shaped, else 118 MB/s.
	NetworkBandwidth float64
	// Pace throttles kernel execution to the calibrated per-core rates,
	// emulating the paper's hardware timing in live runs.
	Pace bool
	// TotalCores and IOReservedCores size each storage node (defaults:
	// 2 and 1, the paper's simulated storage nodes).
	TotalCores      int
	IOReservedCores int
	// EstimatorPeriod is how often each storage node's Contention
	// Estimator re-probes and re-evaluates its policy (default 50 ms).
	EstimatorPeriod time.Duration
	// DataDir, when set, backs stripe stores with files under this
	// directory (one subdirectory per storage node) and journals
	// metadata, making the cluster durable across restarts.
	DataDir string
	// StoreBackend picks the on-disk store format when DataDir is set:
	// "extent" (default; extent files plus the zero-copy read path) or
	// "file" (the v0 one-file-per-handle layout, kept as the bench
	// baseline and for pre-extent data directories).
	StoreBackend string
	// StoreSync makes disk-backed stores fsync after every write and
	// truncate (-fsync on the daemons). Off by default: the page cache
	// absorbs write bursts and the workloads are re-runnable.
	StoreSync bool
	// FDCacheSize caps each disk-backed store's open descriptors
	// (default pfs.DefaultFDCacheSize).
	FDCacheSize int
	// PlainReadPath disables the zero-copy serving path on every
	// storage node: bulk reads stage through pooled buffers and frames
	// are written contiguously, as before this path existed. Used by
	// the sendbuf-vs-sendfile A/B benchmarks.
	PlainReadPath bool
	// WindowDepth is how many chunk requests clients connected through
	// this Cluster keep in flight per server connection during bulk
	// transfers (default pfs.DefaultWindowDepth; 1 disables pipelining).
	WindowDepth int
	// TransferChunk is the per-request chunk size for those bulk
	// transfers (default pfs.DefaultTransferChunk). Smaller chunks make
	// the window matter more on high-latency links.
	TransferChunk int
	// TelemetryTick is how often each node samples its telemetry probes
	// into the time-series rings served by Health/Series and dosasctl
	// top. Zero takes telemetry.DefaultInterval (100 ms); negative
	// disables node telemetry entirely.
	TelemetryTick time.Duration
	// DisableMux makes every server decline the connection-multiplexing
	// handshake, pinning all RPC to the ordered per-exchange mode
	// (emulates a pre-mux deployment; used by A/B benchmarks).
	DisableMux bool
	// SLORules are the alert rules every node's SLO engine evaluates on
	// its telemetry tick. Nil takes DefaultSLORules; engines are only
	// built when node telemetry is enabled (TelemetryTick >= 0).
	SLORules []SLORule
	// DisableSLO turns alert evaluation off even when telemetry runs.
	DisableSLO bool
	// EventCapacity bounds each node's in-memory event ring (default
	// 1024).
	EventCapacity int
	// EventMirror, when set, additionally receives every node's events
	// as human-readable lines (e.g. os.Stderr for daemon consoles).
	EventMirror io.Writer
	// EventDir, when set, persists each node's events as JSON lines
	// under EventDir/<node>.events.jsonl.
	EventDir string
	// EventsMaxBytes caps each node's JSONL event sink (live file plus
	// one rotated predecessor). Zero takes eventlog.DefaultSinkMaxBytes;
	// negative disables rotation.
	EventsMaxBytes int64
	// ArchiveDir, when set, gives every node a durable telemetry
	// archive under ArchiveDir/<node>: each sampler tick is persisted
	// to CRC-framed chunk files with downsampling tiers, served over
	// RangeQueryReq and queried via Cluster.Query / dosasctl query.
	// Requires telemetry (TelemetryTick >= 0).
	ArchiveDir string
	// ArchiveMaxBytes is each node archive's retention budget across
	// all tiers. Zero takes tsdb.DefaultMaxBytes; negative is
	// unbounded.
	ArchiveMaxBytes int64
	// DisableTenants turns per-tenant resource attribution off on every
	// storage node: no usage table, no tenant.wait.share probe, and
	// TenantStatsReq answers with an empty report. Used by the
	// attribution-overhead A/B benchmark.
	DisableTenants bool
	// TenantLimit caps each storage node's tenant table; past it the
	// least-recently-active tenant folds into the "(evicted)" aggregate
	// row (default tenant.DefaultLimit).
	TenantLimit int
	// TenantWeights are the per-tenant weighted-fair scheduling weights
	// applied on every storage node's admission gate and active queue,
	// and on the metadata server's lookup gate. A weight-2 tenant earns
	// scheduling credit twice as fast as a weight-1 tenant; absent
	// tenants weigh 1, and nil means equal weights for everyone.
	TenantWeights map[string]float64
	// QoSSlots bounds concurrently admitted requests per storage node's
	// gate (0 = pfs.DefaultQoSSlots).
	QoSSlots int
	// DisableQoS turns the weighted-fair admission gates off on every
	// node: requests run in arrival order bounded only by the transport,
	// as before the gates existed (isolation A/B benchmarks).
	DisableQoS bool
}

// Cluster is a running DOSAS deployment: one metadata server plus
// DataServers storage nodes, each running the pfs data service with an
// Active I/O Runtime attached.
type Cluster struct {
	net           transport.Network
	metaAddr      string
	dataAddrs     []string
	servers       []*pfs.Server
	runtimes      []*core.Runtime
	meta          *pfs.MetaServer
	metaTele      *telemetry.Sampler
	metaEvents    *eventlog.Log
	metaSLO       *slo.Engine
	dataServers   []*pfs.DataServer
	stores        []pfs.Store
	events        []*eventlog.Log
	engines       []*slo.Engine
	tenantTables  []*tenant.Table
	archives      []*tsdb.Archive
	metaArchive   *tsdb.Archive
	windowDepth   int
	transferChunk int
	telemetryTick time.Duration
}

// newSampler builds one node's telemetry sampler per the cluster's tick
// convention: zero means the default interval, negative disables.
func newSampler(tick time.Duration) *telemetry.Sampler {
	if tick < 0 {
		return nil
	}
	s := telemetry.NewSampler(telemetry.Config{Interval: tick})
	// Every sampler carries the Go runtime health series (goroutines,
	// heap in use, GC pause p99) alongside the node's own probes.
	telemetry.RegisterRuntimeProbes(s)
	return s
}

// newEventLog builds one node's structured event log per the cluster's
// event options.
func (o Options) newEventLog(node string) (*eventlog.Log, error) {
	cfg := eventlog.Config{Node: node, Capacity: o.EventCapacity, Mirror: o.EventMirror, MaxBytes: o.EventsMaxBytes}
	if o.EventDir != "" {
		if err := os.MkdirAll(o.EventDir, 0o755); err != nil {
			return nil, err
		}
		cfg.Path = filepath.Join(o.EventDir, node+".events.jsonl")
	}
	return eventlog.New(cfg)
}

// newArchive builds one node's durable telemetry archive under
// ArchiveDir/<node> and hooks its appender to the sampler's tick. Nil
// (archive disabled) when ArchiveDir is unset or telemetry is off.
// Append failures are reported once to the node's event log rather
// than per tick — a full disk would otherwise flood it.
func (o Options) newArchive(node string, tele *telemetry.Sampler, ev *eventlog.Log) (*tsdb.Archive, error) {
	if o.ArchiveDir == "" || tele == nil {
		return nil, nil
	}
	a, err := tsdb.Open(tsdb.Config{
		Dir:      filepath.Join(o.ArchiveDir, node),
		MaxBytes: o.ArchiveMaxBytes,
	})
	if err != nil {
		return nil, err
	}
	var failed bool
	tele.OnSamples(func(wallNano, monoNano int64, samples []telemetry.Sample) {
		if err := a.Append(wallNano, monoNano, samples); err != nil && !failed {
			failed = true
			ev.Warn("tsdb", "archive append failed", "err", err.Error())
		}
	})
	return a, nil
}

// newEngine builds one node's SLO engine over its sampler and hooks
// evaluation to the sampler's tick, so alert rules are re-judged exactly
// once per fresh telemetry sample. Nil when telemetry or alerting is
// disabled. A non-nil tenant table wires the annotation hook so
// noisy-neighbor transitions name the dominant tenant in the event log.
func (o Options) newEngine(node string, tele *telemetry.Sampler, ev *eventlog.Log, reg *metrics.Registry, tab *tenant.Table) (*slo.Engine, error) {
	if tele == nil || o.DisableSLO {
		return nil, nil
	}
	rules := o.SLORules
	if rules == nil {
		rules = slo.DefaultRules()
	}
	cfg := slo.Config{
		Rules: rules, Sampler: tele, Events: ev, Metrics: reg, Node: node,
	}
	if tab != nil {
		cfg.Annotate = func(rule string) []string {
			if rule != "noisy-neighbor" {
				return nil
			}
			top, share := tab.TopWait()
			if top == "" {
				return nil
			}
			return []string{"tenant", top, "share", fmt.Sprintf("%.2f", share)}
		}
	}
	eng, err := slo.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	tele.OnTick(eng.Eval)
	return eng, nil
}

// StartCluster boots an in-process (or TCP-loopback) cluster and returns
// once every server is accepting connections.
func StartCluster(o Options) (*Cluster, error) {
	if o.DataServers <= 0 {
		o.DataServers = 4
	}
	if o.NetworkBandwidth == 0 {
		if o.LinkRate > 0 {
			o.NetworkBandwidth = o.LinkRate
		} else {
			o.NetworkBandwidth = 118e6
		}
	}

	var solver core.Solver
	if o.Solver != "" {
		s, err := core.SolverByName(o.Solver)
		if err != nil {
			return nil, err
		}
		solver = s
	}

	var net transport.Network
	if o.TCP {
		net = transport.TCP{}
	} else {
		net = transport.NewInproc()
	}
	if o.LinkRate > 0 {
		net = transport.NewShaped(net, o.LinkRate)
	}
	if o.LinkDelay > 0 {
		net = transport.NewDelayed(net, o.LinkDelay)
	}

	c := &Cluster{net: net, windowDepth: o.WindowDepth, transferChunk: o.TransferChunk, telemetryTick: o.TelemetryTick}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()

	c.metaTele = newSampler(o.TelemetryTick)
	metaEvents, err := o.newEventLog("meta")
	if err != nil {
		return nil, err
	}
	c.metaEvents = metaEvents
	metaReg := metrics.NewRegistry()
	metaSLO, err := o.newEngine("meta", c.metaTele, metaEvents, metaReg, nil)
	if err != nil {
		return nil, err
	}
	c.metaSLO = metaSLO
	metaArchive, err := o.newArchive("meta", c.metaTele, metaEvents)
	if err != nil {
		return nil, err
	}
	c.metaArchive = metaArchive
	metaCfg := pfs.MetaConfig{
		NumDataServers:    o.DataServers,
		DefaultStripeSize: o.StripeSize,
		Metrics:           metaReg,
		Telemetry:         c.metaTele,
		Events:            metaEvents,
		SLO:               metaSLO,
		Archive:           metaArchive,
		QoS:               o.qosConfig(),
	}
	if o.DataDir != "" {
		metaCfg.JournalPath = filepath.Join(o.DataDir, "meta.wal")
	}
	meta, err := pfs.NewMetaServer(metaCfg)
	if err != nil {
		return nil, err
	}
	c.meta = meta
	ml, err := net.Listen(o.listenAddr("meta", 0))
	if err != nil {
		return nil, err
	}
	ms := pfs.NewServer(ml, meta)
	ms.SetMux(!o.DisableMux)
	ms.Start()
	c.servers = append(c.servers, ms)
	c.metaAddr = ms.Addr()

	for i := 0; i < o.DataServers; i++ {
		var store pfs.Store
		if o.DataDir != "" {
			dir := filepath.Join(o.DataDir, fmt.Sprintf("data-%d", i))
			switch o.StoreBackend {
			case "", "extent":
				es, err := pfs.NewExtentStore(pfs.ExtentConfig{
					Dir:         dir,
					Sync:        o.StoreSync,
					FDCacheSize: o.FDCacheSize,
				})
				if err != nil {
					return nil, err
				}
				store = es
			case "file":
				fs, err := pfs.NewFileStoreConfig(pfs.FileStoreConfig{
					Dir:         dir,
					Sync:        o.StoreSync,
					FDCacheSize: o.FDCacheSize,
				})
				if err != nil {
					return nil, err
				}
				store = fs
			default:
				return nil, fmt.Errorf("dosas: unknown store backend %q", o.StoreBackend)
			}
		} else {
			store = pfs.NewMemStore()
		}
		c.stores = append(c.stores, store)
		node := fmt.Sprintf("data-%d", i)
		reg := metrics.NewRegistry()
		tr := trace.NewRecorder(4096)
		tr.SetNode(node)
		// The data server and its runtime share one sampler: the runtime
		// registers the probes and owns the lifecycle, the server serves
		// the history over the wire.
		tele := newSampler(o.TelemetryTick)
		// Likewise the decision audit ring: the runtime appends and
		// resolves records, the server answers DecisionLogReq from it.
		alog := audit.NewLog(4096)
		alog.SetNode(node)
		// Events and the alert engine are shared the same way: the runtime
		// emits lifecycle events and the sampler tick drives evaluation,
		// while the server answers EventFetchReq/AlertFetchReq from them.
		ev, err := o.newEventLog(node)
		if err != nil {
			return nil, err
		}
		c.events = append(c.events, ev)
		// The tenant table is shared the same way: the data server and
		// runtime account usage into it, the server answers TenantStatsReq
		// and the SLO annotation hook reads the dominant waiter from it.
		var tab *tenant.Table
		if !o.DisableTenants {
			limit := o.TenantLimit
			if limit <= 0 {
				limit = tenant.DefaultLimit
			}
			tab = tenant.NewTable(limit)
		}
		c.tenantTables = append(c.tenantTables, tab)
		eng, err := o.newEngine(node, tele, ev, reg, tab)
		if err != nil {
			return nil, err
		}
		c.engines = append(c.engines, eng)
		// The archive hooks the shared sampler: every tick the runtime's
		// probes record is also persisted, so post-restart queries see
		// the node's pre-crash history.
		arch, err := o.newArchive(node, tele, ev)
		if err != nil {
			return nil, err
		}
		c.archives = append(c.archives, arch)
		ds, err := pfs.NewDataServer(pfs.DataConfig{Store: store, Metrics: reg, Node: node, Trace: tr, Telemetry: tele, Audit: alog, Events: ev, SLO: eng, Tenants: tab, Archive: arch, QoS: o.qosConfig()})
		if err != nil {
			return nil, err
		}
		rt, err := core.NewRuntime(core.RuntimeConfig{
			Store:  store,
			Mode:   o.Policy.mode(),
			Solver: solver,
			Audit:  alog,
			Estimator: core.EstimatorConfig{
				BW:              o.NetworkBandwidth,
				TotalCores:      o.TotalCores,
				IOReservedCores: o.IOReservedCores,
				Period:          o.EstimatorPeriod,
			},
			Pace:      o.Pace,
			Metrics:   reg,
			Trace:     tr,
			Node:      node,
			Telemetry:     tele,
			Events:        ev,
			Tenants:       tab,
			TenantWeights: o.TenantWeights,
		})
		if err != nil {
			return nil, err
		}
		c.runtimes = append(c.runtimes, rt)
		c.dataServers = append(c.dataServers, ds)
		ds.SetActiveHandler(rt)
		dl, err := net.Listen(o.listenAddr(fmt.Sprintf("data-%d", i), i+1))
		if err != nil {
			return nil, err
		}
		srv := pfs.NewServer(dl, ds)
		srv.SetMux(!o.DisableMux)
		srv.SetFrameStats(ds.WireStats())
		if o.PlainReadPath {
			ds.SetZeroCopy(false)
			srv.SetPlainWrites(true)
		}
		srv.Start()
		c.servers = append(c.servers, srv)
		c.dataAddrs = append(c.dataAddrs, srv.Addr())
	}
	ok = true
	return c, nil
}

// qosConfig builds the per-node admission gate config, or nil when QoS
// is disabled.
func (o Options) qosConfig() *pfs.QoSConfig {
	if o.DisableQoS {
		return nil
	}
	return &pfs.QoSConfig{Slots: o.QoSSlots, Weights: o.TenantWeights}
}

// listenAddr picks the bind address for a server under either transport.
// slot 0 is the metadata server; storage node i uses slot i+1.
func (o Options) listenAddr(name string, slot int) string {
	if !o.TCP {
		return name
	}
	if o.TCPBasePort > 0 {
		return fmt.Sprintf("127.0.0.1:%d", o.TCPBasePort+slot)
	}
	return "127.0.0.1:0"
}

// MetaAddr returns the metadata server's address.
func (c *Cluster) MetaAddr() string { return c.metaAddr }

// DataAddrs returns the storage nodes' addresses in layout order.
func (c *Cluster) DataAddrs() []string { return append([]string(nil), c.dataAddrs...) }

// Connect returns a client file system bound to this cluster using the
// given scheme.
func (c *Cluster) Connect(scheme Scheme) (*FS, error) {
	return c.ConnectClient(ClientOptions{Scheme: scheme})
}

// ConnectPaced is Connect with client-side kernel pacing enabled,
// matching a cluster started with Options.Pace.
func (c *Cluster) ConnectPaced(scheme Scheme) (*FS, error) {
	return c.ConnectClient(ClientOptions{Scheme: scheme, Pace: true})
}

// ConnectClient is Connect with full client options — slow-request
// detection, flight capture, client telemetry — bound to this cluster's
// transport and addresses (o.MetaAddr and o.DataAddrs are ignored).
// Unset window, chunk, and telemetry options inherit the cluster's.
func (c *Cluster) ConnectClient(o ClientOptions) (*FS, error) {
	if o.WindowDepth == 0 {
		o.WindowDepth = c.windowDepth
	}
	if o.TransferChunk == 0 {
		o.TransferChunk = c.transferChunk
	}
	if o.TelemetryTick == 0 {
		o.TelemetryTick = c.telemetryTick
	}
	return connect(c.net, c.metaAddr, c.dataAddrs, o)
}

// TraceDump renders storage node i's request-lifecycle trace: one line
// per arrival, scheduling decision, kernel start, interruption,
// migration, and completion — why the node did what it did.
func (c *Cluster) TraceDump(node int) (string, error) {
	if node < 0 || node >= len(c.runtimes) {
		return "", fmt.Errorf("dosas: no storage node %d", node)
	}
	var sb strings.Builder
	if _, err := c.runtimes[node].Trace().WriteTo(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Close stops every server and releases stores. Safe to call more than
// once.
func (c *Cluster) Close() {
	for _, rt := range c.runtimes {
		rt.Close()
	}
	c.runtimes = nil
	for _, s := range c.servers {
		s.Close()
	}
	c.servers = nil
	for _, ds := range c.dataServers {
		ds.Close()
	}
	c.dataServers = nil
	for _, st := range c.stores {
		st.Close()
	}
	c.stores = nil
	if c.meta != nil {
		c.meta.Close()
		c.meta = nil
	}
	for _, ev := range c.events {
		ev.Close()
	}
	c.events = nil
	if c.metaEvents != nil {
		c.metaEvents.Close()
		c.metaEvents = nil
	}
	// Archives close last: the samplers feeding them stopped when the
	// runtimes and the meta server shut down above, so the final flush
	// seals every open downsample bucket.
	for _, a := range c.archives {
		a.Close()
	}
	c.archives = nil
	if c.metaArchive != nil {
		c.metaArchive.Close()
		c.metaArchive = nil
	}
}

// MetricsSources enumerates every node's exposition inputs for the
// OpenMetrics endpoint (openmetrics.Render / openmetrics.Handler),
// metadata server first, then storage nodes in layout order.
func (c *Cluster) MetricsSources() []openmetrics.Source {
	var out []openmetrics.Source
	if c.meta != nil {
		out = append(out, openmetrics.Source{
			Node: "meta", Role: "meta",
			Metrics: c.meta.Metrics(), Telemetry: c.metaTele,
			SLO: c.metaSLO, Events: c.metaEvents,
		})
	}
	for i, rt := range c.runtimes {
		src := openmetrics.Source{
			Node: fmt.Sprintf("data-%d", i), Role: "data",
			Metrics: rt.Metrics(), Telemetry: rt.Telemetry(),
		}
		if i < len(c.engines) {
			src.SLO = c.engines[i]
		}
		if i < len(c.events) {
			src.Events = c.events[i]
		}
		if i < len(c.tenantTables) {
			src.Tenants = c.tenantTables[i]
		}
		out = append(out, src)
	}
	return out
}

// ClientOptions configures Connect for clusters whose servers run in
// other processes (started with cmd/dosas-meta and cmd/dosas-server).
type ClientOptions struct {
	// MetaAddr is the metadata server's TCP address.
	MetaAddr string
	// DataAddrs are the storage nodes' TCP addresses, in cluster order
	// (the order servers were registered; layouts index into it).
	DataAddrs []string
	// Scheme selects TS / AS / DOSAS client behaviour.
	Scheme Scheme
	// Tenant identifies this client in per-tenant resource attribution:
	// it is stamped on every request the client issues and storage nodes
	// account bytes, ops, queue wait and kernel time against it. Empty
	// means "default".
	Tenant string
	// Pace throttles client-side kernel execution to calibrated rates.
	Pace bool
	// WindowDepth is how many chunk requests bulk transfers keep in
	// flight per server connection (default pfs.DefaultWindowDepth).
	WindowDepth int
	// TransferChunk is the per-request chunk size for bulk transfers
	// (default pfs.DefaultTransferChunk).
	TransferChunk int
	// TelemetryTick is how often the client samples its own probes
	// (pending requests, shipped-bytes rate, bounce rate). Zero takes
	// telemetry.DefaultInterval (100 ms); negative disables client
	// telemetry.
	TelemetryTick time.Duration
	// SlowThreshold arms the slow-request flight recorder: any ReadEx
	// slower than this absolute bound captures a diagnostic bundle. Zero
	// disables the absolute criterion.
	SlowThreshold time.Duration
	// SlowFactor flags any ReadEx slower than SlowFactor× the median of
	// recent reads. Zero disables the relative criterion; with both
	// criteria zero, no bundles are ever captured.
	SlowFactor float64
	// SlowDir, when set, persists captured bundles as JSON under this
	// directory for dosasctl slow to read from another process.
	SlowDir string
	// SlowDirBytes caps the total bytes of persisted bundles in SlowDir;
	// oldest are pruned past it. Zero takes the package default;
	// negative disables the cap.
	SlowDirBytes int64
	// FlightCapacity bounds the slow-request journal (default 16).
	FlightCapacity int
	// DisableMux pins the client's pool to ordered per-exchange
	// connections instead of negotiating multiplexing with the servers.
	DisableMux bool
	// HedgeAfter enables hedged reads on replicated files: a segment read
	// still unanswered after this delay is duplicated to the next-best
	// replica and the loser is cancelled. Used as the fallback trigger
	// until the per-server latency tracker can derive a quantile-based
	// one. Zero disables hedging.
	HedgeAfter time.Duration
}

// Connect dials an externally managed cluster over TCP.
func Connect(o ClientOptions) (*FS, error) {
	return connect(transport.TCP{}, o.MetaAddr, o.DataAddrs, o)
}

func connect(net transport.Network, metaAddr string, dataAddrs []string, o ClientOptions) (*FS, error) {
	pc, err := pfs.NewClient(pfs.ClientConfig{
		Net: net, MetaAddr: metaAddr, DataAddrs: dataAddrs, WindowDepth: o.WindowDepth, TransferChunk: o.TransferChunk,
		DisableMux: o.DisableMux, Tenant: o.Tenant, HedgeAfter: o.HedgeAfter,
	})
	if err != nil {
		return nil, err
	}
	asc, err := core.NewClient(core.ClientConfig{
		FS: pc, Scheme: o.Scheme.core(), Pace: o.Pace, WindowDepth: o.WindowDepth,
		Tenant:         o.Tenant,
		Telemetry:      newSampler(o.TelemetryTick),
		SlowThreshold:  o.SlowThreshold,
		SlowFactor:     o.SlowFactor,
		SlowDir:        o.SlowDir,
		SlowDirBytes:   o.SlowDirBytes,
		FlightCapacity: o.FlightCapacity,
	})
	if err != nil {
		pc.Close()
		return nil, err
	}
	return &FS{pc: pc, asc: asc, scheme: o.Scheme}, nil
}
