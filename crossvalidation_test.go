package dosas_test

// Cross-validation of the discrete-event simulator against the live
// system: the same calibration (kernel rate, link rate, request sizes)
// driven through both paths must produce makespans that agree within a
// modest tolerance. This is what licenses using the simulator for the
// paper-scale experiments no single host can materialise.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dosas"
	"dosas/internal/core"
	"dosas/internal/kernels"
	"dosas/internal/sim"
	"dosas/internal/workload"
)

const (
	xvKernelRate = 20e6    // paced sum8 rate, bytes/second
	xvLinkRate   = 30e6    // shaped storage-node link, bytes/second
	xvReqBytes   = 2 << 20 // per-request size
)

// liveMakespan runs n concurrent requests against a paced, shaped
// one-node cluster and returns the wall-clock makespan.
func liveMakespan(t *testing.T, scheme dosas.Scheme, n int) float64 {
	t.Helper()
	policy := dosas.Dynamic
	switch scheme {
	case dosas.AS:
		policy = dosas.AlwaysAccept
	case dosas.TS:
		policy = dosas.AlwaysBounce
	}
	cluster, err := dosas.StartCluster(dosas.Options{
		DataServers: 1,
		Policy:      policy,
		LinkRate:    xvLinkRate,
		Pace:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.ConnectPaced(scheme)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("xv/data", dosas.CreateOptions{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(workload.RandomBytes(n*xvReqBytes, 5), 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if _, err := f.ReadEx("sum8", nil, uint64(r*xvReqBytes), xvReqBytes); err != nil {
				t.Errorf("req %d: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	return time.Since(start).Seconds()
}

// simMakespan runs the same point through the simulator.
func simMakespan(t *testing.T, scheme core.Scheme, n int) float64 {
	t.Helper()
	m, err := sim.Run(sim.Config{
		Scheme:             scheme,
		Requests:           n,
		BytesPerRequest:    xvReqBytes,
		Op:                 "sum8",
		StorageRatePerCore: xvKernelRate,
		ComputeRatePerCore: xvKernelRate,
		BW:                 xvLinkRate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m.Makespan
}

func TestSimulatorMatchesLiveSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second timing test")
	}
	kernels.SetRate("sum8", xvKernelRate)
	defer kernels.ResetRates()

	pairs := []struct {
		pub  dosas.Scheme
		core core.Scheme
	}{
		{dosas.TS, core.SchemeTS},
		{dosas.AS, core.SchemeAS},
		{dosas.DOSAS, core.SchemeDOSAS},
	}
	for _, p := range pairs {
		for _, n := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/n=%d", p.pub, n), func(t *testing.T) {
				predicted := simMakespan(t, p.core, n)
				measured := liveMakespan(t, p.pub, n)
				// The live path adds RPC framing, scheduling jitter and
				// pacing quantisation on top of the ideal model; ±45 %
				// still cleanly separates the schemes' orderings, whose
				// gaps at these points exceed that.
				ratio := measured / predicted
				if ratio < 0.55 || ratio > 1.45 {
					t.Errorf("live %.3fs vs simulated %.3fs (ratio %.2f)",
						measured, predicted, ratio)
				}
			})
		}
	}
}
