package dosas_test

// Acceptance tests for the operational plane: a contention storm on a
// live cluster must walk a burn-rate alert through pending → firing →
// resolved, record the transitions in the event log, degrade Health
// while firing, and expose the whole story over the wire and in the
// OpenMetrics rendering — while a quiet cluster fires nothing at all.
// A second group exercises the wire-sweep error paths: a node that
// cannot be reached yields a synthetic not-ready health report and is
// skipped — deterministically — by the series/events/alerts sweeps.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dosas"
	"dosas/internal/openmetrics"
)

// stormRules is a burn-rate rule with windows shrunk to test scale.
// Arrivals land in bursts a few hundred milliseconds apart (one burst
// per storm round), so the windows must span several rounds to see a
// steady breach — yet stay short enough that the alert resolves within
// a couple of seconds of calm.
func stormRules(t *testing.T) []dosas.SLORule {
	t.Helper()
	rules, err := dosas.ParseSLORules([]byte(`[{
		"name": "storm-burn", "kind": "burn_rate",
		"series": "bounce.delta", "denom": "arrivals.delta",
		"objective": 0.02, "factor": 2,
		"short_window": "600ms", "long_window": "1200ms",
		"for": "100ms", "severity": "page"
	}]`))
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// startStorm keeps rounds of 8 concurrent sum8 reads running until the
// returned stop function is called.
func startStorm(t *testing.T, fs *dosas.FS, name string, length uint64) (stop func()) {
	t.Helper()
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-quit:
				return
			default:
				stormRead(t, fs, name, 8, length)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(quit); <-done }) }
}

// alertNamed finds one node's status for a rule — every engine carries
// the full rule set, so the aggregate holds one entry per (node, rule).
func alertNamed(alerts []dosas.Alert, node, rule string) (dosas.Alert, bool) {
	for _, a := range alerts {
		if a.Node == node && a.Rule == rule {
			return a, true
		}
	}
	return dosas.Alert{}, false
}

// TestAlertLifecycleOnStorm drives a custom tiny-window burn-rate rule
// through its full lifecycle on a real contended cluster and checks
// every surface that is supposed to show it.
func TestAlertLifecycleOnStorm(t *testing.T) {
	orig := dosas.RateFor("sum8")
	dosas.SetRate("sum8", 15e6)
	defer dosas.SetRate("sum8", orig)

	c := startCluster(t, dosas.Options{
		DataServers:   1,
		Policy:        dosas.Dynamic,
		LinkRate:      30e6,
		Pace:          true,
		TelemetryTick: 2 * time.Millisecond,
		SLORules:      stormRules(t),
	})
	fs, err := c.ConnectClient(dosas.ClientOptions{Scheme: dosas.DOSAS, Pace: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Close)

	const reqBytes = 1 << 20
	writeTestFile(t, fs, "storm.bin", reqBytes)
	time.Sleep(20 * time.Millisecond) // quiet baseline ticks

	if a, ok := alertNamed(c.Alerts(), "data-0", "storm-burn"); !ok {
		t.Fatal("storm-burn rule missing from Cluster.Alerts before load")
	} else if a.State != "inactive" {
		t.Fatalf("baseline state = %s, want inactive", a.State)
	}

	stop := startStorm(t, fs, "storm.bin", reqBytes)
	defer stop()

	// Poll while the storm runs until the rule fires, then check the
	// surfaces that must reflect a firing alert before stopping the load.
	var firing dosas.Alert
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if a, ok := alertNamed(c.Alerts(), "data-0", "storm-burn"); ok && a.State == "firing" {
			firing = a
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if firing.State != "firing" {
		stop()
		t.Fatalf("storm-burn never fired; decisions = %+v", c.DecisionMetrics())
	}
	if firing.Node != "data-0" || firing.Severity != "page" || firing.FiredUnixNano == 0 {
		t.Fatalf("firing alert = %+v", firing)
	}

	// The wire sweep sees the same alert dosasctl alerts would print.
	wireAlerts, err := fs.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := alertNamed(wireAlerts, "data-0", "storm-burn"); !ok {
		t.Fatal("storm-burn missing from wire alert sweep")
	} else if a.Node != "data-0" {
		t.Fatalf("wire alert node = %q, want data-0", a.Node)
	}
	if out := dosas.FormatAlerts(wireAlerts); !strings.Contains(out, "storm-burn") {
		t.Fatalf("FormatAlerts lost the rule:\n%s", out)
	}

	// A firing page-severity alert must degrade the node's health.
	sawAlertCheck := false
	for _, r := range c.Health() {
		if r.Node != "data-0" {
			continue
		}
		for _, chk := range r.Checks {
			if chk.Name == "alerts" && !chk.OK {
				sawAlertCheck = true
			}
		}
	}
	if !sawAlertCheck {
		t.Fatal("data-0 health has no failing alerts check while firing")
	}

	// The OpenMetrics rendering carries the alert state under node labels.
	var b strings.Builder
	if err := openmetrics.Render(&b, c.MetricsSources()); err != nil {
		t.Fatal(err)
	}
	om := b.String()
	for _, want := range []string{`node="data-0"`, "dosas_slo_alert", "dosas_telemetry", "# EOF"} {
		if !strings.Contains(om, want) {
			t.Fatalf("OpenMetrics rendering missing %q:\n%.2000s", want, om)
		}
	}

	// Calm: with the load gone both burn windows drain and the alert
	// must resolve on its own.
	stop()
	resolved := false
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a, ok := alertNamed(c.Alerts(), "data-0", "storm-burn"); ok && a.State == "resolved" {
			if a.ResolvedUnixNano == 0 {
				t.Fatalf("resolved alert without timestamp: %+v", a)
			}
			resolved = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !resolved {
		a, _ := alertNamed(c.Alerts(), "data-0", "storm-burn")
		t.Fatalf("alert never resolved after calm: %+v", a)
	}

	// Every transition was journaled as a structured event.
	msgs := map[string]bool{}
	for _, ev := range c.Events(dosas.EventDebug, 0) {
		if ev.Sub == "slo" {
			msgs[ev.Msg] = true
		}
	}
	for _, want := range []string{"alert pending", "alert firing", "alert resolved"} {
		if !msgs[want] {
			t.Fatalf("event log missing %q; slo events = %v", want, msgs)
		}
	}
}

// TestBuiltinRulesQuietAndStorm checks the rules shipped by default: a
// healthy cluster serving ordinary traffic fires nothing, and the
// built-in bounce-budget burn-rate rule catches a sustained storm.
func TestBuiltinRulesQuietAndStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained storm")
	}
	orig := dosas.RateFor("sum8")
	dosas.SetRate("sum8", 15e6)
	defer dosas.SetRate("sum8", orig)

	c := startCluster(t, dosas.Options{
		DataServers:   1,
		Policy:        dosas.Dynamic,
		LinkRate:      30e6,
		Pace:          true,
		TelemetryTick: 2 * time.Millisecond,
	})
	fs, err := c.ConnectClient(dosas.ClientOptions{Scheme: dosas.DOSAS, Pace: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Close)

	const reqBytes = 1 << 20
	writeTestFile(t, fs, "builtin.bin", reqBytes)

	// Steady state: ordinary reads, no alerts beyond inactive.
	f, err := fs.Open("builtin.bin")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := f.ReadEx("sum8", nil, 0, 64<<10); err != nil {
			t.Fatal(err)
		}
	}
	// Let the telemetry ring turn over once (600 points at a 2 ms tick)
	// so warm-up transients — the estimator's first error samples — age
	// out of the rate-of-change windows before judging steady state.
	time.Sleep(1500 * time.Millisecond)
	for _, a := range c.Alerts() {
		if a.State == "pending" || a.State == "firing" {
			t.Fatalf("quiet cluster raised %s alert %q: %+v", a.State, a.Rule, a)
		}
	}

	// Sustained storm: the built-in rule's windows span seconds, so keep
	// the load on until it fires.
	stop := startStorm(t, fs, "builtin.bin", reqBytes)
	defer stop()
	fired := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if a, ok := alertNamed(c.Alerts(), "data-0", "bounce-budget-burn"); ok && a.State == "firing" {
			fired = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop()
	if !fired {
		a, _ := alertNamed(c.Alerts(), "data-0", "bounce-budget-burn")
		t.Fatalf("built-in bounce-budget-burn never fired under storm: %+v (decisions %+v)",
			a, c.DecisionMetrics())
	}
}

// deadAddr reserves a loopback port and releases it, yielding an
// address that refuses connections immediately.
func deadAddr(t *testing.T) string {
	t.Helper()
	return fmt.Sprintf("127.0.0.1:%d", freePort(t))
}

// TestSweepsSkipUnreachableNodes connects a client whose data-server
// table names one live node and one dead address, then checks every
// wire sweep's error path: Health synthesises a not-ready report for
// the dead node, while Series, Events, and Alerts skip it and still
// return the reachable nodes — the same way on every sweep.
func TestSweepsSkipUnreachableNodes(t *testing.T) {
	c := startCluster(t, dosas.Options{
		DataServers:   1,
		TCP:           true,
		TelemetryTick: 2 * time.Millisecond,
	})
	fs, err := dosas.Connect(dosas.ClientOptions{
		MetaAddr:  c.MetaAddr(),
		DataAddrs: []string{c.DataAddrs()[0], deadAddr(t)},
		Scheme:    dosas.DOSAS,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Close)

	// Health: three reports, the dead node not-ready with a failing
	// "reachable" check — and nothing else failing on the live ones.
	reports := fs.Health()
	if len(reports) != 3 {
		t.Fatalf("health sweep returned %d reports, want 3", len(reports))
	}
	byNode := map[string]dosas.HealthReport{}
	for _, r := range reports {
		byNode[r.Node] = r
	}
	dead, ok := byNode["data-1"]
	if !ok {
		t.Fatalf("no synthetic report for dead node: %+v", reports)
	}
	if dead.Ready {
		t.Fatal("dead node reported ready")
	}
	if len(dead.Checks) != 1 || dead.Checks[0].Name != "reachable" || dead.Checks[0].OK {
		t.Fatalf("dead node checks = %+v, want one failing reachable check", dead.Checks)
	}
	for _, n := range []string{"meta", "data-0"} {
		if r, ok := byNode[n]; !ok || !r.Ready {
			t.Fatalf("live node %s not ready in partial sweep: %+v", n, byNode[n])
		}
	}

	// Series / Events / Alerts: the dead node is skipped without error,
	// and two identical sweeps agree on exactly which nodes answered.
	for sweep := 0; sweep < 2; sweep++ {
		series, err := fs.Series(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := series["data-1"]; ok {
			t.Fatal("series sweep returned data for the dead node")
		}
		for _, n := range []string{"meta", "data-0"} {
			if len(series[n]) == 0 {
				t.Fatalf("sweep %d: no series from live node %s", sweep, n)
			}
		}

		pages, err := fs.Events(nil, dosas.EventDebug, 0)
		if err != nil {
			t.Fatal(err)
		}
		var nodes []string
		for _, p := range pages {
			nodes = append(nodes, p.Node)
			if p.Node == "data-1" {
				t.Fatal("events sweep returned a page for the dead node")
			}
		}
		if len(nodes) != 2 {
			t.Fatalf("sweep %d: events pages from %v, want meta and data-0", sweep, nodes)
		}

		alerts, err := fs.Alerts()
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alerts {
			if a.Node == "data-1" {
				t.Fatalf("alert sweep returned the dead node: %+v", a)
			}
		}
		if len(alerts) == 0 {
			t.Fatalf("sweep %d: alert sweep returned nothing from live nodes", sweep)
		}
	}

	// DecisionLog sweeps skip the dead node the same way: after one
	// active read lands a decision on the live node, the sweep returns
	// it without erroring on data-1.
	writeTestFile(t, fs, "sweep.bin", 64<<10)
	f, err := fs.Open("sweep.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadEx("sum8", nil, 0, 64<<10); err != nil {
		t.Fatal(err)
	}
	records, _, err := fs.DecisionLog(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("decision-log sweep lost the live node's records")
	}
	for _, r := range records {
		if r.Node != "data-0" {
			t.Fatalf("decision record from unexpected node: %+v", r)
		}
	}

	// The live node's events include the runtime start marker, proving
	// the page content survived the partial sweep.
	pages, err := fs.Events(nil, dosas.EventDebug, 0)
	if err != nil {
		t.Fatal(err)
	}
	var all []dosas.Event
	for _, p := range pages {
		all = append(all, p.Events...)
	}
	merged := dosas.MergeEvents(all)
	found := false
	for _, ev := range merged {
		if ev.Msg == "active runtime started" {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged events missing runtime start marker: %d events", len(merged))
	}
}
