package dosas

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dosas/internal/slo"
)

// ReportOptions selects an incident report's window and contents.
type ReportOptions struct {
	// Alert focuses the report on one rule: the window spans from that
	// rule's earliest recorded transition to its latest resolution (or
	// now, while it still fires), padded by Pad on both ends. Errors if
	// the rule has no recorded transitions.
	Alert string
	// Since and Until bound the window explicitly when Alert is empty.
	// A zero Until means now; a zero Since means Until − 15 minutes.
	Since, Until time.Time
	// Pad widens an alert-derived window on both ends so the lead-up
	// and aftermath are visible (default 30 s).
	Pad time.Duration
	// Step is the archived-series reduction step (default 1 s).
	Step time.Duration
	// Series overrides the telemetry series to include. Empty derives
	// the set from the included alerts' rule series.
	Series []string
	// MaxEvents caps the event timeline, keeping the newest (default
	// 200); the count of clipped older events is reported.
	MaxEvents int
	// Now fixes the report's notion of the current time (zero means
	// time.Now()) — injectable so builds are reproducible.
	Now time.Time
}

// ReportSeries is one telemetry series' archived window across nodes.
type ReportSeries struct {
	Name  string       `json:"name"`
	Nodes []NodeSeries `json:"nodes"`
}

// IncidentReport is one stitched diagnostic bundle: the alert
// transitions, event-log timeline, and archived telemetry of an
// incident window, as assembled by Cluster.Report / FS.Report and
// printed by dosasctl report.
type IncidentReport struct {
	// Rule is the focus rule, when the report was built around one.
	Rule string `json:"rule,omitempty"`
	// FromUnixNano and UntilUnixNano bound the incident window.
	FromUnixNano  int64 `json:"from"`
	UntilUnixNano int64 `json:"until"`
	// Alerts holds the focus rule's per-node alerts first, then every
	// other non-inactive alert, node-major.
	Alerts []Alert `json:"alerts,omitempty"`
	// Events is the merged cross-node event timeline clipped to the
	// window, oldest first; TruncatedEvents counts older entries
	// dropped by the MaxEvents cap.
	Events          []Event `json:"events,omitempty"`
	TruncatedEvents int     `json:"truncated_events,omitempty"`
	// Series holds the archived telemetry windows, one entry per
	// series name, each with per-node points.
	Series []ReportSeries `json:"series,omitempty"`
}

// BuildIncidentReport stitches an alert table, a merged event timeline,
// and archived telemetry (fetched through query — Cluster.Query,
// FS.Query, or a test double) into one bundle. It is deterministic
// given its inputs and o.Now.
func BuildIncidentReport(o ReportOptions, alerts []Alert, events []Event, query func(RangeQuery) (QueryResult, error)) (IncidentReport, error) {
	now := o.Now
	if now.IsZero() {
		now = time.Now()
	}
	pad := o.Pad
	if pad <= 0 {
		pad = 30 * time.Second
	}

	var from, until int64
	var focus []Alert
	if o.Alert != "" {
		for _, a := range alerts {
			if a.Rule == o.Alert {
				focus = append(focus, a)
			}
		}
		if len(focus) == 0 {
			return IncidentReport{}, fmt.Errorf("dosas: no alert rule %q on any node", o.Alert)
		}
		for _, a := range focus {
			start := a.FiredUnixNano
			if start == 0 {
				start = a.SinceUnixNano
			}
			if start != 0 && (from == 0 || start < from) {
				from = start
			}
			end := a.ResolvedUnixNano
			if a.State == slo.StateFiring || a.State == slo.StatePending || end == 0 {
				end = now.UnixNano()
			}
			if end > until {
				until = end
			}
		}
		if from == 0 {
			return IncidentReport{}, fmt.Errorf("dosas: alert rule %q has no recorded transitions", o.Alert)
		}
		from -= int64(pad)
		until += int64(pad)
	} else {
		until = now.UnixNano()
		if !o.Until.IsZero() {
			until = o.Until.UnixNano()
		}
		from = until - int64(15*time.Minute)
		if !o.Since.IsZero() {
			from = o.Since.UnixNano()
		}
	}

	r := IncidentReport{Rule: o.Alert, FromUnixNano: from, UntilUnixNano: until}

	// Focus rows first (node order), then every other non-inactive
	// alert node-major — the table reads incident-first.
	sortAlerts := func(s []Alert) {
		sort.SliceStable(s, func(i, j int) bool {
			if s[i].Node != s[j].Node {
				return s[i].Node < s[j].Node
			}
			return s[i].Rule < s[j].Rule
		})
	}
	var rest []Alert
	for _, a := range alerts {
		if a.Rule != o.Alert && a.State != slo.StateInactive {
			rest = append(rest, a)
		}
	}
	sortAlerts(focus)
	sortAlerts(rest)
	r.Alerts = append(append([]Alert{}, focus...), rest...)

	maxEvents := o.MaxEvents
	if maxEvents <= 0 {
		maxEvents = 200
	}
	for _, ev := range events {
		if ev.UnixNano >= from && ev.UnixNano <= until {
			r.Events = append(r.Events, ev)
		}
	}
	if len(r.Events) > maxEvents {
		r.TruncatedEvents = len(r.Events) - maxEvents
		r.Events = append([]Event(nil), r.Events[r.TruncatedEvents:]...)
	}

	names := o.Series
	if len(names) == 0 {
		seen := make(map[string]bool)
		for _, a := range r.Alerts {
			if a.Series != "" && !seen[a.Series] {
				seen[a.Series] = true
				names = append(names, a.Series)
			}
		}
		sort.Strings(names)
	}
	step := o.Step
	if step <= 0 {
		step = time.Second
	}
	for _, name := range names {
		res, err := query(RangeQuery{
			Name: name, From: time.Unix(0, from), Until: time.Unix(0, until), Step: step,
		})
		if err != nil {
			return r, fmt.Errorf("dosas: querying %s: %w", name, err)
		}
		r.Series = append(r.Series, ReportSeries{Name: name, Nodes: res.Nodes})
	}
	return r, nil
}

// Report builds an incident report from this cluster's alert tables,
// event rings, and node archives, in-process.
func (c *Cluster) Report(o ReportOptions) (IncidentReport, error) {
	return BuildIncidentReport(o, c.Alerts(), c.Events(EventDebug, 0), c.Query)
}

// Report builds an incident report by sweeping the connected cluster
// over the wire: alert tables, event tails, and archived telemetry.
// Unreachable nodes are skipped, so a report of a degraded cluster
// still assembles from the nodes that answer.
func (fs *FS) Report(o ReportOptions) (IncidentReport, error) {
	alerts, err := fs.Alerts()
	if err != nil {
		return IncidentReport{}, err
	}
	pages, err := fs.Events(nil, EventDebug, 0)
	if err != nil {
		return IncidentReport{}, err
	}
	sets := make([][]Event, 0, len(pages))
	for _, p := range pages {
		sets = append(sets, p.Events)
	}
	return BuildIncidentReport(o, alerts, MergeEvents(sets...), fs.Query)
}

// reportTime renders a report timestamp; UTC so reports are identical
// wherever they are generated.
func reportTime(nano int64) string {
	return time.Unix(0, nano).UTC().Format("2006-01-02 15:04:05.000")
}

// reportSparkline draws points as a fixed-width bar strip scaled to the
// window maximum.
func reportSparkline(points []SeriesPoint, width int) string {
	if len(points) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	var max float64
	for _, p := range points {
		if p.Value > max {
			max = p.Value
		}
	}
	if len(points) > width {
		points = points[len(points)-width:]
	}
	out := make([]rune, 0, len(points))
	for _, p := range points {
		idx := 0
		if max > 0 {
			idx = int(p.Value / max * float64(len(bars)-1))
		}
		out = append(out, bars[idx])
	}
	return string(out)
}

// FormatIncidentReport renders a report as the multi-section text
// dosasctl report prints. All times are UTC.
func FormatIncidentReport(r IncidentReport) string {
	var b strings.Builder
	b.WriteString("INCIDENT REPORT")
	if r.Rule != "" {
		fmt.Fprintf(&b, "  rule=%s", r.Rule)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "window  %s .. %s (%s)\n",
		reportTime(r.FromUnixNano), reportTime(r.UntilUnixNano),
		time.Duration(r.UntilUnixNano-r.FromUnixNano).Round(time.Millisecond))

	if len(r.Alerts) > 0 {
		b.WriteString("\nALERTS\n")
		b.WriteString(FormatAlerts(r.Alerts))
	}

	fmt.Fprintf(&b, "\nEVENTS (%d)\n", len(r.Events)+r.TruncatedEvents)
	if r.TruncatedEvents > 0 {
		fmt.Fprintf(&b, "… %d older events clipped\n", r.TruncatedEvents)
	}
	for _, ev := range r.Events {
		b.WriteString(time.Unix(0, ev.UnixNano).UTC().Format("15:04:05.000"))
		fmt.Fprintf(&b, " %-5s ", strings.ToUpper(ev.Level))
		if ev.Node != "" {
			b.WriteString(ev.Node)
			b.WriteByte('/')
		}
		b.WriteString(ev.Sub)
		b.WriteByte(' ')
		b.WriteString(ev.Msg)
		for _, f := range ev.Fields {
			fmt.Fprintf(&b, " %s=%s", f.K, f.V)
		}
		b.WriteByte('\n')
	}

	for _, s := range r.Series {
		fmt.Fprintf(&b, "\nTELEMETRY %s\n", s.Name)
		for _, ns := range s.Nodes {
			if len(ns.Points) == 0 {
				fmt.Fprintf(&b, "  %-8s (no archived data)\n", ns.Node)
				continue
			}
			min, max, sum := ns.Points[0].Value, ns.Points[0].Value, 0.0
			for _, p := range ns.Points {
				if p.Value < min {
					min = p.Value
				}
				if p.Value > max {
					max = p.Value
				}
				sum += p.Value
			}
			fmt.Fprintf(&b, "  %-8s n=%-4d min=%-8s mean=%-8s max=%-8s %s\n",
				ns.Node, len(ns.Points),
				slo.FormatValue(min), slo.FormatValue(sum/float64(len(ns.Points))), slo.FormatValue(max),
				reportSparkline(ns.Points, 32))
		}
	}
	return b.String()
}
