package dosas_test

// Randomized end-to-end stress test: concurrent clients under every scheme
// fire random combinable operations at random subranges of shared striped
// files, and every single result is checked against a locally computed
// reference. This is the integration-level analogue of the kernel
// chunking/migration properties: no matter where the system chooses to
// run a kernel — storage node, compute node, or migrated mid-flight — the
// answer must be bit-identical.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"dosas"
	"dosas/internal/kernels"
	"dosas/internal/workload"
)

// refRun computes the reference output by running the kernel directly.
func refRun(t *testing.T, op string, params, data []byte) []byte {
	t.Helper()
	k, err := kernels.New(op)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Configure(params); err != nil {
		t.Fatal(err)
	}
	if err := k.Process(data); err != nil {
		t.Fatal(err)
	}
	out, err := k.Result()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRandomizedOperationsMatchReference(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cluster := startCluster(t, dosas.Options{DataServers: 3})

	// Shared dataset: three files of different sizes and stripe widths.
	writer := connect(t, cluster, dosas.AS)
	type fixture struct {
		name string
		data []byte
	}
	fixtures := make([]fixture, 3)
	for i := range fixtures {
		name := fmt.Sprintf("stress/f%d", i)
		size := 100_000 + i*137_000
		data := workload.RandomBytes(size, int64(i+1))
		f, err := writer.Create(name, dosas.CreateOptions{
			StripeSize: 16 << 10,
			Width:      i%3 + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		fixtures[i] = fixture{name: name, data: data}
	}

	ops := []struct {
		op     string
		params []byte
	}{
		{"sum8", nil},
		{"histogram", nil},
		{"count", []byte{0xAB}},
		{"wordcount", nil},
	}

	schemes := []dosas.Scheme{dosas.TS, dosas.AS, dosas.DOSAS}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 977))
			fs, err := cluster.Connect(schemes[w%len(schemes)])
			if err != nil {
				t.Error(err)
				return
			}
			defer fs.Close()
			for iter := 0; iter < 25; iter++ {
				fx := fixtures[rng.Intn(len(fixtures))]
				f, err := fs.Open(fx.name)
				if err != nil {
					t.Error(err)
					return
				}
				off := uint64(rng.Intn(len(fx.data) - 1))
				length := uint64(rng.Intn(len(fx.data)-int(off)-1) + 1)
				oc := ops[rng.Intn(len(ops))]
				res, err := f.ReadEx(oc.op, oc.params, off, length)
				if err != nil {
					t.Errorf("worker %d iter %d: %s over [%d,%d): %v", w, iter, oc.op, off, off+length, err)
					return
				}
				want := refRun(t, oc.op, oc.params, fx.data[off:off+length])
				if !equalResult(oc.op, res.Output, want) {
					t.Errorf("worker %d iter %d: %s over [%d,%d) of %s: wrong result",
						w, iter, oc.op, off, off+length, fx.name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// equalResult compares a cluster result against the local reference,
// tolerating the documented cross-stripe caveats of the counting kernels
// (matches and words that straddle stripe joints).
func equalResult(op string, got, want []byte) bool {
	switch op {
	case "count", "wordcount":
		// Combination counts per-shard: the cluster may differ from the
		// single-stream reference by at most the number of stripe joints
		// (one potential straddling match/word per joint). Allow a small
		// absolute slack.
		g, w := dosas.CountResult(got), dosas.CountResult(want)
		diff := math.Abs(float64(g) - float64(w))
		return diff <= 64
	default:
		return bytes.Equal(got, want)
	}
}
