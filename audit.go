package dosas

import (
	"fmt"
	"sort"

	"dosas/internal/audit"
	"dosas/internal/core"
	"dosas/internal/wire"
)

// DecisionRecord is one recorded scheduler invocation on a storage node:
// the environment the Contention Estimator saw, every request's feature
// vector with predicted costs and margin to the decision boundary, the
// solver's chosen assignment, and — once the decided request finishes —
// the measured outcome.
type DecisionRecord = audit.Record

// DecisionFeature is one request's feature vector inside a
// DecisionRecord.
type DecisionFeature = audit.Feature

// DecisionOutcome is the realized fate of the request a decision
// admitted or bounced.
type DecisionOutcome = audit.Outcome

// DecisionEnv is the environment snapshot a decision was made under.
type DecisionEnv = audit.Env

// ReplayOverrides perturbs the recorded environment during
// counterfactual replay ("what if the network were 10× faster?").
type ReplayOverrides = audit.Overrides

// ReplayReport scores one policy's counterfactual run over a decision
// log: bounce rate, agreement with the recorded choices, total time and
// per-request regret against the pointwise oracle.
type ReplayReport = audit.Report

// ReplayVerdict is one request's counterfactual outcome inside a
// ReplayReport.
type ReplayVerdict = audit.Verdict

// FormatDecisions renders records as the human-readable rationale
// dosasctl explain prints.
func FormatDecisions(records []DecisionRecord) string { return audit.FormatRecords(records) }

// EncodeDecisions marshals records as the canonical JSON array written
// to decision-log files.
func EncodeDecisions(records []DecisionRecord) ([]byte, error) {
	return audit.EncodeRecords(records)
}

// DecodeDecisions is the inverse of EncodeDecisions.
func DecodeDecisions(data []byte) ([]DecisionRecord, error) { return audit.DecodeRecords(data) }

// FilterDecisionsTrace keeps records whose batch involved the given
// distributed trace.
func FilterDecisionsTrace(records []DecisionRecord, traceID uint64) []DecisionRecord {
	return audit.FilterTrace(records, traceID)
}

// LastDecisions returns the trailing n records (n <= 0 means all).
func LastDecisions(records []DecisionRecord, n int) []DecisionRecord {
	return audit.Last(records, n)
}

// ReplayPolicies names the policies ReplayDecisions accepts: "recorded"
// (echo the log — a fixed point), plus every production solver.
func ReplayPolicies() []string {
	return []string{"recorded", "exhaustive", "maxgain", "all-active", "all-normal"}
}

// ReplayDecisions re-runs a decision log under the named policy and
// perturbed environment, scoring the counterfactual with recorded actual
// costs where the log has them. The policies run the production solver
// code, so "what would exhaustive have done" is answered by Exhaustive
// itself, not a reimplementation.
func ReplayDecisions(records []DecisionRecord, policy string, ov ReplayOverrides) (ReplayReport, error) {
	p, err := core.PolicyByName(policy)
	if err != nil {
		return ReplayReport{}, err
	}
	return audit.Replay(records, p, ov), nil
}

// EncodeReplayReports marshals reports as the stable, indented JSON that
// dosasctl whatif emits (byte-deterministic for a given log and policy
// set — the property make replay-determinism checks).
func EncodeReplayReports(reports []ReplayReport) ([]byte, error) {
	return audit.EncodeReports(reports)
}

// DecisionLog returns storage node i's retained decision records in
// chronological order.
func (c *Cluster) DecisionLog(node int) ([]DecisionRecord, error) {
	if node < 0 || node >= len(c.runtimes) {
		return nil, fmt.Errorf("dosas: no storage node %d", node)
	}
	return c.runtimes[node].Audit().Snapshot(), nil
}

// DecisionLogAll merges every storage node's decision log into one
// chronological timeline (ties broken by node, then per-node sequence).
func (c *Cluster) DecisionLogAll() []DecisionRecord {
	var out []DecisionRecord
	for _, rt := range c.runtimes {
		out = append(out, rt.Audit().Snapshot()...)
	}
	sortDecisions(out)
	return out
}

// DecisionLog sweeps every storage node of the connected cluster over
// the wire and merges the retained decision logs chronologically. limit,
// when positive, keeps only the trailing limit records per node;
// traceID, when non-zero, restricts to decisions whose batch involved
// that trace. Unreachable nodes are skipped (they surface in Health).
// dropped is the total number of records the nodes' rings overwrote:
// non-zero means the merged log is a suffix of the cluster's true
// decision history.
func (fs *FS) DecisionLog(limit uint64, traceID uint64) (records []DecisionRecord, dropped uint64, err error) {
	for _, n := range fs.nodeAddrs() {
		if n.role != "data" {
			continue
		}
		resp, callErr := fs.pc.Pool().Call(n.addr, &wire.DecisionLogReq{Limit: limit, TraceID: traceID})
		if callErr != nil {
			continue
		}
		dl, ok := resp.(*wire.DecisionLogResp)
		if !ok {
			return records, dropped, fmt.Errorf("dosas: unexpected decision-log response %v", resp.Type())
		}
		recs, decErr := audit.DecodeRecords(dl.Records)
		if decErr != nil {
			return records, dropped, fmt.Errorf("dosas: %s: %w", n.name, decErr)
		}
		records = append(records, recs...)
		dropped += dl.Dropped
	}
	sortDecisions(records)
	return records, dropped, nil
}

// sortDecisions orders a multi-node record set by wall-clock time, with
// ties broken by node then per-node sequence — the same convention as
// StitchTimeline. All nodes of an in-process or single-host cluster
// share a clock; across real hosts it is as good as their clock sync.
func sortDecisions(records []DecisionRecord) {
	sort.SliceStable(records, func(i, j int) bool {
		if records[i].TimeUnixNano != records[j].TimeUnixNano {
			return records[i].TimeUnixNano < records[j].TimeUnixNano
		}
		if records[i].Node != records[j].Node {
			return records[i].Node < records[j].Node
		}
		return records[i].Seq < records[j].Seq
	})
}
