module dosas

go 1.22
