package dosas_test

// Telemetry overhead benchmarks. The acceptance bar for the continuous
// telemetry pipeline is <1% added latency on the active read path; run
//
//	go test -run '^$' -bench ReadPathTelemetry -benchtime 50x
//
// and compare the Off/On ns/op. The samplers fire on their own tick
// goroutine and the read path only touches lock-free counters, so the
// delta is expected to sit in the benchmark noise floor.

import (
	"testing"
	"time"

	"dosas"
	"dosas/internal/workload"
)

func benchReadPathTelemetry(b *testing.B, tick time.Duration) {
	b.Helper()
	c, err := dosas.StartCluster(dosas.Options{
		DataServers:   2,
		Policy:        dosas.AlwaysAccept,
		TelemetryTick: tick,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	fs, err := c.ConnectClient(dosas.ClientOptions{Scheme: dosas.DOSAS, TelemetryTick: tick})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()

	const size = 1 << 20
	f, err := fs.Create("bench.bin")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.WriteAt(workload.RandomBytes(size, 7), 0); err != nil {
		b.Fatal(err)
	}

	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadEx("sum8", nil, 0, size); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadPathTelemetryOff is the baseline: samplers disabled on
// every node and on the client.
func BenchmarkReadPathTelemetryOff(b *testing.B) { benchReadPathTelemetry(b, -1) }

// BenchmarkReadPathTelemetryOn runs the samplers at the default 100ms
// tick, the production configuration.
func BenchmarkReadPathTelemetryOn(b *testing.B) { benchReadPathTelemetry(b, 0) }

// BenchmarkReadPathTelemetryFast runs a pathologically hot 1ms tick to
// bound the worst case.
func BenchmarkReadPathTelemetryFast(b *testing.B) {
	benchReadPathTelemetry(b, time.Millisecond)
}
