package dosas

import (
	"fmt"
	"io"
)

// This file provides the MPI-IO-flavoured interface of the paper's
// Table I. It is a thin veneer over FS/File so applications written
// against MPI_File_* call shapes can migrate mechanically:
//
//	MPI_File_read(fh, buf, count, datatype, &status)
//	  → dosas.FileRead(fh, buf, count, dosas.Byte, &status)
//	MPI_File_read_ex(fh, &result, count, datatype, op, &status)
//	  → dosas.FileReadEx(fh, &result, count, dosas.Byte, op, params, &status)

// Datatype is the element type of an MPI-style transfer.
type Datatype int

// Basic datatypes.
const (
	Byte Datatype = iota
	Int32
	Int64
	Float32
	Float64
)

// Size returns the datatype's width in bytes.
func (d Datatype) Size() int {
	switch d {
	case Byte:
		return 1
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	default:
		return 0
	}
}

// String names the datatype in MPI style.
func (d Datatype) String() string {
	switch d {
	case Byte:
		return "MPI_BYTE"
	case Int32:
		return "MPI_INT32"
	case Int64:
		return "MPI_INT64"
	case Float32:
		return "MPI_FLOAT"
	case Float64:
		return "MPI_DOUBLE"
	default:
		return fmt.Sprintf("datatype(%d)", int(d))
	}
}

// Status reports what a transfer accomplished, like MPI_Status.
type Status struct {
	// Count is the number of datatype elements transferred or, for
	// FileReadEx, consumed by the operation.
	Count int
	// Where records execution sites for FileReadEx parts.
	Where []Where
}

// ExResult is the paper's `struct result` (Table I): the target of
// FileReadEx. Completed reports whether the storage side finished the
// operation (1 in the paper); when the ASC had to finish it locally the
// flag is still delivered as true to the application, with provenance in
// Status.Where — applications never manage partial results themselves.
type ExResult struct {
	Completed bool
	// Buf holds the operation's output.
	Buf []byte
	// FH is the file the operation ran on.
	FH *File
	// Offset is the file position after the operation.
	Offset int64
	// TraceID names the distributed trace this call produced; feed it to
	// Cluster.TraceTimeline or `dosasctl trace` to reconstruct where and
	// why each part ran.
	TraceID uint64
}

// FileOpen opens an existing file, like MPI_File_open.
func FileOpen(fs *FS, name string) (*File, error) { return fs.Open(name) }

// FileClose releases a file handle, like MPI_File_close. (Handles hold no
// server state; this exists for call-shape parity.)
func FileClose(f **File) error {
	*f = nil
	return nil
}

// FileRead reads count elements of datatype at the file cursor into buf,
// like MPI_File_read. buf must have at least count×size bytes.
func FileRead(fh *File, buf []byte, count int, datatype Datatype, status *Status) error {
	want := count * datatype.Size()
	if want == 0 {
		if status != nil {
			status.Count = 0
		}
		return nil
	}
	if len(buf) < want {
		return fmt.Errorf("dosas: FileRead buffer holds %d bytes, need %d", len(buf), want)
	}
	n, err := io.ReadFull(fh, buf[:want])
	if status != nil {
		status.Count = n / datatype.Size()
	}
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return nil // short count is reported via status, as in MPI
	}
	return err
}

// FileReadAt is FileRead at an explicit offset, like
// MPI_File_read_at.
func FileReadAt(fh *File, offset int64, buf []byte, count int, datatype Datatype, status *Status) error {
	want := count * datatype.Size()
	if len(buf) < want {
		return fmt.Errorf("dosas: FileReadAt buffer holds %d bytes, need %d", len(buf), want)
	}
	n, err := fh.ReadAt(buf[:want], uint64(offset))
	if status != nil {
		status.Count = n / datatype.Size()
	}
	return err
}

// FileWrite writes count elements of datatype from buf at the file
// cursor, like MPI_File_write.
func FileWrite(fh *File, buf []byte, count int, datatype Datatype, status *Status) error {
	want := count * datatype.Size()
	if len(buf) < want {
		return fmt.Errorf("dosas: FileWrite buffer holds %d bytes, need %d", len(buf), want)
	}
	n, err := fh.Write(buf[:want])
	if status != nil {
		status.Count = n / datatype.Size()
	}
	return err
}

// FileReadEx is the paper's extended MPI-IO call: read count elements of
// datatype at the file cursor and apply `operation` to them, on the
// storage nodes when the system's scheduling policy permits, otherwise on
// the compute node. The operation's output lands in result.Buf; where the
// work ran lands in status.Where.
func FileReadEx(fh *File, result *ExResult, count int, datatype Datatype,
	operation string, params []byte, status *Status) error {
	if result == nil {
		return fmt.Errorf("dosas: FileReadEx needs a result target")
	}
	length := uint64(count) * uint64(datatype.Size())
	res, err := fh.ReadEx(operation, params, fh.pos, length)
	if err != nil {
		return err
	}
	fh.pos += length
	result.Completed = res.Completed
	result.Buf = res.Output
	result.FH = fh
	result.Offset = int64(fh.pos)
	result.TraceID = res.TraceID
	if status != nil {
		status.Count = count
		status.Where = status.Where[:0]
		for _, p := range res.Parts {
			status.Where = append(status.Where, p.Where)
		}
	}
	return nil
}
