package dosas_test

import (
	"encoding/json"
	"strings"
	"testing"

	"dosas"
	"dosas/internal/trace"
	"dosas/internal/workload"
)

// writeTestFile creates name on fs and fills it with n random bytes.
func writeTestFile(t *testing.T, fs *dosas.FS, name string, n int) *dosas.File {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(workload.RandomBytes(n, 42), 0); err != nil {
		t.Fatal(err)
	}
	return f
}

// The tentpole acceptance check: one active read produces a stitched
// cross-node timeline whose client-side and storage-side spans share the
// client-minted TraceID.
func TestStitchedTimelineSharesTraceID(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 2, Policy: dosas.AlwaysAccept})
	fs := connect(t, c, dosas.DOSAS)
	f := writeTestFile(t, fs, "obs/data", 300_000)

	res, err := f.ReadEx("sum8", nil, 0, f.Size())
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == 0 {
		t.Fatal("result carries no TraceID")
	}

	clientEvs := dosas.FilterTrace(fs.TraceEvents(), res.TraceID)
	if len(clientEvs) == 0 {
		t.Fatal("client recorded no events for the trace")
	}
	storageEvs := c.TraceTimeline(res.TraceID)
	if len(storageEvs) == 0 {
		t.Fatal("storage nodes recorded no events for the trace")
	}

	timeline := dosas.StitchTimeline(clientEvs, storageEvs)
	var sawClient, sawStorage, sawKernelSpan, sawPredicted bool
	for _, e := range timeline {
		if e.TraceID != res.TraceID {
			t.Fatalf("stitched event from foreign trace: %+v", e)
		}
		switch {
		case e.Node == "client":
			sawClient = true
		case strings.HasPrefix(e.Node, "data-"):
			sawStorage = true
		}
		if e.Phase == trace.PhaseKernel && e.Dur > 0 {
			sawKernelSpan = true
		}
		if e.Predicted > 0 {
			sawPredicted = true
		}
	}
	if !sawClient || !sawStorage {
		t.Errorf("timeline missing a side: client=%v storage=%v\n%s",
			sawClient, sawStorage, dosas.FormatTimeline(timeline))
	}
	if !sawKernelSpan {
		t.Errorf("no kernel-execute span with a duration:\n%s", dosas.FormatTimeline(timeline))
	}
	if !sawPredicted {
		t.Errorf("no span records the estimator's predicted cost:\n%s", dosas.FormatTimeline(timeline))
	}

	// The rendered timeline shows both sides for the operator.
	out := dosas.FormatTimeline(timeline)
	for _, want := range []string{"client", "data-", "issue", "complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered timeline missing %q:\n%s", want, out)
		}
	}
}

// A bounced request's timeline records the scheduling decision and its
// reason on the storage side, and the client's local execution spans.
func TestTraceRecordsRejectDecision(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 2, Policy: dosas.AlwaysBounce})
	fs := connect(t, c, dosas.DOSAS)
	f := writeTestFile(t, fs, "obs/bounce", 200_000)

	res, err := f.ReadEx("sum8", nil, 0, f.Size())
	if err != nil {
		t.Fatal(err)
	}

	storageEvs := c.TraceTimeline(res.TraceID)
	var sawReject bool
	for _, e := range storageEvs {
		if e.Kind == trace.KindReject {
			sawReject = true
			if e.Phase != trace.PhaseDecision {
				t.Errorf("reject span has phase %q, want %q", e.Phase, trace.PhaseDecision)
			}
			if e.Note == "" {
				t.Error("reject span records no reason")
			}
		}
	}
	if !sawReject {
		t.Fatalf("no reject decision recorded:\n%s", dosas.FormatTimeline(storageEvs))
	}

	clientEvs := dosas.FilterTrace(fs.TraceEvents(), res.TraceID)
	var sawTransfer, sawLocal bool
	for _, e := range clientEvs {
		if e.Kind == trace.KindTransfer && e.Phase == trace.PhaseTransfer {
			sawTransfer = true
		}
		if e.Kind == trace.KindComplete && strings.Contains(e.Note, "client") {
			sawLocal = true
		}
	}
	if !sawTransfer || !sawLocal {
		t.Errorf("client side missing transfer=%v local-compute=%v spans:\n%s",
			sawTransfer, sawLocal, dosas.FormatTimeline(clientEvs))
	}
}

// Cluster-wide stats aggregate per-node snapshots, and the decision
// metrics reflect the configured policy.
func TestClusterStatsAndDecisionMetrics(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 2, Policy: dosas.AlwaysAccept})
	fs := connect(t, c, dosas.DOSAS)
	f := writeTestFile(t, fs, "obs/stats", 250_000)
	for i := 0; i < 3; i++ {
		if _, err := f.ReadEx("sum8", nil, 0, f.Size()); err != nil {
			t.Fatal(err)
		}
	}

	stats := c.Stats()
	if _, ok := stats["meta"]; !ok {
		t.Error("stats missing meta node")
	}
	var arrivals int64
	for i := 0; i < 2; i++ {
		s, ok := stats[nodeName(i)]
		if !ok {
			t.Fatalf("stats missing %s", nodeName(i))
		}
		arrivals += s.Counter("active.arrivals")
	}
	if arrivals == 0 {
		t.Error("no active arrivals counted across storage nodes")
	}

	// Snapshots must be JSON-encodable end to end (the wire payload form).
	if _, err := json.Marshal(stats); err != nil {
		t.Fatalf("stats not JSON-encodable: %v", err)
	}

	dm := c.DecisionMetrics()
	if dm.Arrivals == 0 || dm.Completed == 0 {
		t.Errorf("decision metrics empty: %+v", dm)
	}
	if dm.BounceRate != 0 {
		t.Errorf("always-accept cluster bounced: %+v", dm)
	}
	if dm.EstimatorSamples == 0 || dm.EstimatorErrPct < 0 {
		t.Errorf("estimator error not tracked: %+v", dm)
	}

	// An always-bounce cluster reports a 100% bounce rate.
	cb := startCluster(t, dosas.Options{DataServers: 1, Policy: dosas.AlwaysBounce})
	fb := connect(t, cb, dosas.DOSAS)
	g := writeTestFile(t, fb, "obs/allbounce", 100_000)
	if _, err := g.ReadEx("sum8", nil, 0, g.Size()); err != nil {
		t.Fatal(err)
	}
	dmb := cb.DecisionMetrics()
	if dmb.Arrivals == 0 || dmb.Bounced != dmb.Arrivals || dmb.BounceRate != 1 {
		t.Errorf("always-bounce metrics = %+v", dmb)
	}
}

func nodeName(i int) string {
	return "data-" + string(rune('0'+i))
}
