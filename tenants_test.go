package dosas_test

import (
	"strings"
	"testing"

	"dosas"
	"dosas/internal/workload"
)

// usageFor finds one tenant's merged cluster-wide usage row.
func usageFor(rows []dosas.TenantUsage, tenant string) (dosas.TenantUsage, bool) {
	for _, u := range rows {
		if u.Tenant == tenant {
			return u, true
		}
	}
	return dosas.TenantUsage{}, false
}

// The tenant attribution plane end to end: two labelled clients plus an
// unlabelled one drive traffic, and both the in-process accessor and
// the wire sweep attribute bytes, ops, and kernel time to the right
// tenants.
func TestTenantAttributionEndToEnd(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 2, Policy: dosas.AlwaysAccept})

	alpha, err := c.ConnectClient(dosas.ClientOptions{Scheme: dosas.DOSAS, Tenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	defer alpha.Close()
	beta, err := c.ConnectClient(dosas.ClientOptions{Scheme: dosas.TS, Tenant: "beta"})
	if err != nil {
		t.Fatal(err)
	}
	defer beta.Close()
	anon := connect(t, c, dosas.DOSAS) // no tenant: lands on "default"

	f, err := alpha.Create("tenants/data")
	if err != nil {
		t.Fatal(err)
	}
	data := workload.RandomBytes(400_000, 7)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadEx("sum8", nil, 0, f.Size()); err != nil {
		t.Fatal(err)
	}

	bf, err := beta.Open("tenants/data")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := bf.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}

	af, err := anon.Open("tenants/data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.ReadAt(buf[:1000], 0); err != nil {
		t.Fatal(err)
	}

	// In-process view.
	reports := c.Tenants()
	if len(reports) != 2 {
		t.Fatalf("Tenants() returned %d reports, want one per storage node", len(reports))
	}
	merged := dosas.MergeTenantUsage(reports)

	a, ok := usageFor(merged, "alpha")
	if !ok {
		t.Fatal("no usage row for tenant alpha")
	}
	if a.BytesWritten != uint64(len(data)) {
		t.Errorf("alpha BytesWritten = %d, want %d", a.BytesWritten, len(data))
	}
	if a.ActiveOps == 0 {
		t.Error("alpha issued an active read but ActiveOps = 0")
	}
	if a.KernelNanos == 0 {
		t.Error("alpha ran a kernel but KernelNanos = 0")
	}

	b, ok := usageFor(merged, "beta")
	if !ok {
		t.Fatal("no usage row for tenant beta")
	}
	if b.BytesRead != uint64(len(data)) {
		t.Errorf("beta BytesRead = %d, want %d", b.BytesRead, len(data))
	}
	if b.BytesWritten != 0 {
		t.Errorf("beta wrote nothing but BytesWritten = %d", b.BytesWritten)
	}

	d, ok := usageFor(merged, "default")
	if !ok {
		t.Fatal("unlabelled client not attributed to the default tenant")
	}
	if d.BytesRead != 1000 {
		t.Errorf("default BytesRead = %d, want 1000", d.BytesRead)
	}

	// Wire view must agree with the in-process view.
	wireReports, err := anon.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	wireMerged := dosas.MergeTenantUsage(wireReports)
	for _, tn := range []string{"alpha", "beta", "default"} {
		local, _ := usageFor(merged, tn)
		remote, ok := usageFor(wireMerged, tn)
		if !ok {
			t.Fatalf("wire sweep missing tenant %s", tn)
		}
		if remote.BytesRead != local.BytesRead || remote.BytesWritten != local.BytesWritten {
			t.Errorf("%s: wire usage %+v != in-process %+v", tn, remote, local)
		}
	}

	// Formatting: every tenant appears, sorted by bytes with alpha first.
	dosas.SortTenantUsage(wireMerged, "bytes")
	if wireMerged[0].Tenant != "alpha" {
		t.Errorf("bytes sort put %s first, want alpha", wireMerged[0].Tenant)
	}
	table := dosas.FormatTenants(wireMerged)
	for _, tn := range []string{"TENANT", "alpha", "beta", "default"} {
		if !strings.Contains(table, tn) {
			t.Errorf("formatted table missing %q:\n%s", tn, table)
		}
	}
}

// DisableTenants turns the whole plane off: no in-process reports, and
// the wire sweep answers with empty usage rather than an error.
func TestTenantAttributionDisabled(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 1, DisableTenants: true})
	fs := connect(t, c, dosas.DOSAS)

	f, err := fs.Create("tenants/off")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(workload.RandomBytes(10_000, 3), 0); err != nil {
		t.Fatal(err)
	}

	if got := c.Tenants(); len(got) != 0 {
		t.Errorf("disabled cluster returned %d tenant reports", len(got))
	}
	reports, err := fs.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if len(r.Usage) != 0 {
			t.Errorf("%s: disabled node reported usage %+v", r.Node, r.Usage)
		}
	}
}
